// Package core is the paper's system put together: a two-level
// multiple-aggregation engine that plans an LFTA configuration (which
// phantoms to instantiate, how to split the memory budget) for a set of
// group-by queries, executes the stream through it, merges exact answers
// at the HFTA, and optionally re-plans adaptively as the stream's group
// counts and clusteredness drift.
//
// The planning default is the paper's best algorithm, GCSL (greedy by
// increasing collision rates with supernode-linear space allocation),
// under the peak-load constraint of Section 3.3 when one is configured.
package core

import (
	"fmt"
	"math/bits"

	"repro/internal/attr"
	"repro/internal/backoff"
	"repro/internal/choose"
	"repro/internal/cost"
	"repro/internal/epochstore"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/hashtab"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/query"
	"repro/internal/selvec"
	"repro/internal/sketch"
	"repro/internal/spacealloc"
	"repro/internal/stream"
)

// Planner chooses a configuration and allocation for a query workload.
type Planner func(g *feedgraph.Graph, groups feedgraph.GroupCounts, m int, p cost.Params) (*choose.Result, error)

// GCSLPlanner is the paper's recommended planner.
func GCSLPlanner(g *feedgraph.Graph, groups feedgraph.GroupCounts, m int, p cost.Params) (*choose.Result, error) {
	return choose.GCSL(g, groups, m, p)
}

// GSPlanner returns a Planner running GS with the given φ.
func GSPlanner(phi float64) Planner {
	return func(g *feedgraph.Graph, groups feedgraph.GroupCounts, m int, p cost.Params) (*choose.Result, error) {
		return choose.GS(g, groups, m, p, phi)
	}
}

// NoPhantomPlanner instantiates only the queries (SL allocation).
func NoPhantomPlanner(g *feedgraph.Graph, groups feedgraph.GroupCounts, m int, p cost.Params) (*choose.Result, error) {
	return choose.NoPhantom(g, groups, m, p, spacealloc.SL)
}

// PeakMethod selects the repair applied when the end-of-epoch cost
// exceeds the peak-load constraint.
type PeakMethod string

// Peak-load repair methods (Section 6.3.4).
const (
	PeakShrink PeakMethod = "shrink"
	PeakShift  PeakMethod = "shift"
)

// AdaptOptions control adaptive re-planning (the paper's Section 8
// direction: configuration choice is fast enough to re-run online).
type AdaptOptions struct {
	Enabled        bool
	EveryEpochs    int     // re-plan cadence in epochs (default 1)
	MinImprovement float64 // fractional modeled-cost gain required to switch (default 0.05)

	// TrackPhantoms maintains a HyperLogLog distinct counter per
	// candidate phantom, so re-planning uses measured group counts for
	// relations that have no hash table (instead of scaling stale
	// estimates by the queries' drift). Costs one hash per candidate per
	// record plus 4 KB per candidate at the default precision.
	TrackPhantoms   bool
	SketchPrecision uint8 // 0 = sketch.DefaultPrecision
}

// ResultHandler receives each query's finalized rows (HAVING applied)
// when an epoch closes, together with the epoch's degradation accounting
// (shared by all queries of the epoch) so consumers know exactly what the
// rows cover. When a handler is installed the engine releases the epoch's
// HFTA state immediately afterwards, so memory stays bounded regardless
// of stream length; without one, results accumulate for later retrieval
// via Results/AllResults.
type ResultHandler func(rel attr.Set, epoch uint32, rows []hfta.Row, deg Degradation)

// Options configure an Engine.
type Options struct {
	M       int          // LFTA memory budget in 4-byte units
	Params  cost.Params  // zero value = cost.DefaultParams()
	Planner Planner      // nil = GCSLPlanner
	Seed    uint64       // hash seeds for the LFTA tables
	PeakEu  float64      // peak-load constraint E_p on E_u; 0 = none
	PeakFix PeakMethod   // repair method when PeakEu is set
	Adapt   AdaptOptions // adaptive re-planning

	// Shards partitions the LFTA level into this many independent
	// instances (Gigascope's one-LFTA-per-interface deployment), each
	// owning its own hash tables sized by the same allocation. Records
	// route by a hash of their full attribute vector, so all records of a
	// group land on one shard and the HFTA merge stays exact. 0 or 1 runs
	// the single-runtime fast path.
	//
	// Overload control is unified across shards: Budget is one global
	// per-time-unit budget whose slices are split across shards
	// (demand-proportionally, reconciled at every epoch boundary), and the
	// engine keeps one ledger per shard plus the global one — the
	// per-shard ledgers sum exactly to the global
	// Offered == Processed + Dropped + Late identity on every epoch.
	Shards int

	// Budget enables overload control: the LFTA may spend at most this
	// many weighted operation units (Params.C1 per probe, Params.C2 per
	// transfer) per stream time unit; records beyond it are shed by the
	// Shed policy and counted per epoch. 0 disables overload control and
	// keeps the hot path untouched. With Shards > 1 the budget is split
	// across shards and reconciled per epoch; see Shards.
	Budget float64

	// Shed picks which records to sacrifice under overload; nil with a
	// positive Budget defaults to DropTail.
	Shed ShedPolicy

	// PeakRepairEpochs enables the online peak-load repair: when the
	// measured end-of-epoch flush cost exceeds PeakEu for this many
	// consecutive epochs, the engine re-applies the PeakFix repair
	// (shrink/shift) to the live allocation. 0 disables; requires PeakEu.
	PeakRepairEpochs int

	// CheckpointPath, when set, makes the engine write a checkpoint of
	// its state to this file (atomically, via rename) at every epoch
	// boundary; see Engine.WriteCheckpointFile and RestoreCheckpointFile.
	CheckpointPath string

	// Store, when set, persists every finalized epoch's results durably:
	// at each epoch close the finalized rows are handed to an asynchronous
	// persister goroutine over a bounded queue and appended to the store
	// with retried, backed-off writes. The hot path never blocks on the
	// store; epochs that cannot be persisted (store down past the retry
	// budget, queue full) are recorded in the durability ledger (see
	// Engine.Durability) and ingest continues. The engine does not close
	// the store; the caller owns its lifecycle (close after Finish).
	Store *epochstore.Store

	// StoreQueue bounds the persist queue in epochs (default 8). When the
	// store cannot keep up, epochs beyond the bound degrade to unpersisted
	// rather than blocking ingest.
	StoreQueue int

	// StoreBackoff is the persister's retry schedule. The zero value uses
	// the backoff defaults with Seed defaulted from Options.Seed.
	StoreBackoff backoff.Policy

	// WrapBatchSink, when set, wraps the LFTA→HFTA transfer channel —
	// the hook the chaos suite uses to inject sink faults
	// (lfta.FaultySink). Production deployments leave it nil.
	WrapBatchSink func(lfta.BatchSink) lfta.BatchSink

	// OnResults streams finalized epochs out of the engine and bounds
	// its memory; see ResultHandler.
	OnResults ResultHandler

	// OnWindow streams closed sliding windows out of the engine (one
	// call per query relation per window, HAVING applied); see
	// WindowHandler. Without a handler, windowed results accumulate for
	// retrieval via WindowResults/WindowLedgers. Ignored unless the
	// workload declares a window or sketch aggregates.
	OnWindow WindowHandler

	// WindowSketchPrecision is the HLL register exponent for
	// count_distinct sketch aggregates (0 = sketch.DefaultPrecision).
	WindowSketchPrecision uint8

	// DigestCompression is the t-digest δ for percentile/median sketch
	// aggregates (0 = sketch.DefaultCompression).
	DigestCompression float64

	// InterpretedFilter forces WHERE evaluation through the interpreted
	// per-record DNF walk instead of the compiled columnar kernels — the
	// measurement baseline for the vectorized-filter benchmarks and the
	// control leg of the filter equivalence suite. Also forces the
	// per-record admission path in ProcessColumnBatch.
	InterpretedFilter bool
}

// Stats summarize an engine's execution.
type Stats struct {
	Ops         lfta.Ops
	ModeledCost float64 // per-record modeled cost of the active plan
	Replans     int     // adaptive re-plans adopted
	Epochs      int     // epochs completed

	// Degradation is the cumulative overload accounting across closed
	// epochs plus the currently open one: Offered records split exactly
	// into Processed + Dropped + Late.
	Degradation Degradation

	// ResultErrors counts epochs-emission errors (Results failures inside
	// the OnResults delivery loop); the first such error is returned by
	// Finish.
	ResultErrors int

	// PeakRepairs counts online peak-load repairs applied because the
	// measured flush cost exceeded PeakEu for PeakRepairEpochs epochs.
	PeakRepairs int

	// Durability is the durable epoch store's accounting (persisted and
	// unpersisted epochs); Enabled is false when no store is attached.
	Durability Durability

	// Windows counts closed sliding windows (0 for tumbling workloads).
	Windows int
}

// Engine is the assembled two-level system.
type Engine struct {
	specs    []*query.Spec
	queries  []attr.Set
	epochLen uint32
	aggs     []lfta.AggSpec

	graph  *feedgraph.Graph
	groups feedgraph.GroupCounts
	opts   Options

	// flowLens holds the last epoch's measured per-relation flow lengths
	// (adaptive mode); it backs opts.Params.FlowLen and is carried by
	// checkpoint format v2 so a restored engine re-plans from the same
	// measurements the crashed one used.
	flowLens map[attr.Set]float64

	plan  *choose.Result
	rt    *lfta.Runtime // single-runtime path (nShards == 0)
	srt   *lfta.Sharded // sharded path (nShards > 1); exactly one of rt/srt is set
	agg   *hfta.Aggregator
	clock *stream.Clock

	totalOps lfta.Ops // ops accumulated across re-plans
	stats    Stats

	specByRel map[attr.Set]*query.Spec

	// Stream position: records offered to Process since construction (or
	// restore), including filtered, late, and shed ones — the replay
	// offset a checkpoint records.
	consumed uint64

	// Overload control (active when opts.Budget > 0).
	shedder     ShedPolicy
	shedTick    uint32
	shedAvail   float64
	shedStarted bool

	// Sharded deployment state (nShards > 1): the per-shard slices of the
	// global budget for the current time unit, the demand-proportional
	// split weights (reconciled at every epoch boundary), the per-shard
	// ledgers of the open epoch, their cumulative totals, the per-epoch
	// per-shard ledger history, and the per-shard stream positions
	// (records routed to each shard since construction or restore).
	nShards     int
	shardAvail  []float64
	shardWeight []float64
	shardDeg    []Degradation
	shardCum    []Degradation
	shardHist   [][]Degradation
	shardRouted []uint64

	// Degradation accounting: the open epoch's counters, the closed
	// epochs' history, and the cumulative total.
	deg     Degradation
	degInit bool
	degHist []Degradation
	cumDeg  Degradation

	// Online peak-load repair state: consecutive epochs whose measured
	// flush cost exceeded PeakEu, and the last epoch's measured cost.
	overPeak      int
	lastFlushCost float64

	firstResultErr error

	// Result emission: emitResults is the row source emitEpoch delivers
	// from (e.Results normally; tests substitute failing sources) and
	// emitRetry is the backoff schedule a transient emission failure is
	// retried on before the epoch's query counts as a ResultError.
	emitResults func(rel attr.Set, epoch uint32) ([]hfta.Row, error)
	emitRetry   backoff.Policy

	// Durable persistence (Options.Store): the async persister pipeline
	// and the ledger of persisted/unpersisted epochs. The ledger always
	// exists (a restored v3 checkpoint can carry durability state even
	// into an engine with no store attached); persist is nil without a
	// store.
	persist *persister
	durable *durableLedger

	// Online group-count sketches for candidate phantoms (adaptive mode
	// with TrackPhantoms), reset every epoch.
	sketches  map[attr.Set]*sketch.HLL
	sketchBuf []uint32

	// Record staging for the batched LFTA path (active only when
	// opts.Budget == 0: overload control must charge each record's
	// measured cost before admitting the next, which forces the scalar
	// path). On-time records accumulate in runs of up to stageRun records
	// — per shard when sharded — column-major: one preallocated slice per
	// attribute written by index (callers may reuse rec.Attrs after
	// Process returns, so the words are copied exactly once), draining
	// through Runtime.ProcessColumns when a run fills, at every epoch
	// boundary, and before any counter read. The staged columns ARE the
	// probe key columns of a raw relation — the batch kernel reads them
	// with no per-record gather — and the cascade's delta run builds from
	// them stride-1. Ledgers, sketches, and the stream position are all
	// maintained at Process time, so staging is invisible everywhere
	// except the memory access schedule.
	stageCols  [][]uint32
	stageLen   int
	stageWidth int
	stageEpoch uint32
	shardCols  [][][]uint32
	shardLens  []int
	colView    [][]uint32 // reused column views handed to ProcessColumns

	// Sliding-window state (active when the workload declares a window
	// or sketch aggregates): the pane→window composer, the sketch agg
	// list, the open pane's per-(relation, group) sketch partials, and
	// the closed windows' ledgers plus (without an OnWindow handler)
	// their result rows. Pane sketch accumulation runs in the
	// single-threaded admission path, so serialized pane partials — and
	// therefore windowed results — are identical across shard counts.
	winComposer  *hfta.Composer
	sketchAggs   []sketch.Agg
	paneSk       map[attr.Set]map[string]*sketch.Partial
	paneKeyBuf   []uint32
	paneKeyBytes []byte
	windowLeds   []hfta.WindowLedger
	windowRows   []hfta.WindowRow

	// winRowScratch is deliverWindows' reused per-query HAVING filter
	// buffer (safe to reuse across handler calls: rows are only valid
	// during the call).
	winRowScratch []hfta.WindowRow

	// Vectorized WHERE state: the compiled filter (nil when the WHERE is
	// empty or Options.InterpretedFilter is set — an empty WHERE pays no
	// filter work at all), the interpreted-baseline flag, and the
	// columnar admission scratch (segment selection bitmap, compact
	// shard-route indices, row gather buffer).
	filter   *query.CompiledFilter
	interp   bool
	segSel   selvec.Bitmap
	shardIdx []int32
	rowBuf   []uint32
}

// stageRun is the staged-run capacity, matching the SPSC pipeline's
// sealed-run size so the batch kernel sees the same run shape on both
// ingestion paths.
const stageRun = 512

// New builds an engine from GSQL query texts (see package query for the
// dialect). The queries must differ only in grouping attributes. groups
// supplies g_R for every relation of the feeding graph — use
// EstimateGroups to measure it from a stream sample.
func New(sqls []string, groups feedgraph.GroupCounts, opts Options) (*Engine, error) {
	specs, err := query.ParseSet(sqls)
	if err != nil {
		return nil, err
	}
	return NewFromSpecs(specs, groups, opts)
}

// NewFromSample builds an engine whose group-count estimates are measured
// from a warm-up sample of the stream — the usual deployment flow.
func NewFromSample(sqls []string, sample []stream.Record, opts Options) (*Engine, error) {
	specs, err := query.ParseSet(sqls)
	if err != nil {
		return nil, err
	}
	queries := make([]attr.Set, len(specs))
	for i, s := range specs {
		queries[i] = s.GroupBy
	}
	groups, err := EstimateGroups(sample, queries)
	if err != nil {
		return nil, err
	}
	return NewFromSpecs(specs, groups, opts)
}

// NewFromSpecs builds an engine from parsed queries.
func NewFromSpecs(specs []*query.Spec, groups feedgraph.GroupCounts, opts Options) (*Engine, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: no queries")
	}
	if opts.M <= 0 {
		return nil, fmt.Errorf("core: memory budget M must be positive, got %d", opts.M)
	}
	if opts.Params.C1 == 0 && opts.Params.C2 == 0 {
		opts.Params = cost.DefaultParams()
	}
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.Planner == nil {
		opts.Planner = GCSLPlanner
	}
	if opts.PeakEu > 0 && opts.PeakFix == "" {
		opts.PeakFix = PeakShift
	}
	if opts.Adapt.Enabled {
		if opts.Adapt.EveryEpochs <= 0 {
			opts.Adapt.EveryEpochs = 1
		}
		if opts.Adapt.MinImprovement <= 0 {
			opts.Adapt.MinImprovement = 0.05
		}
	}
	if opts.Budget < 0 {
		return nil, fmt.Errorf("core: processing budget must be non-negative, got %v", opts.Budget)
	}
	if opts.Budget > 0 && opts.Shed == nil {
		opts.Shed = DropTail{}
	}
	if opts.PeakRepairEpochs > 0 && opts.PeakEu <= 0 {
		return nil, fmt.Errorf("core: PeakRepairEpochs requires a PeakEu constraint")
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("core: shard count must be non-negative, got %d", opts.Shards)
	}

	e := &Engine{
		specs:     specs,
		epochLen:  specs[0].EpochLen,
		aggs:      specs[0].AggSpecs(),
		groups:    groups,
		opts:      opts,
		shedder:   opts.Shed,
		specByRel: make(map[attr.Set]*query.Spec, len(specs)),
		durable:   newDurableLedger(),
		emitRetry: backoff.Policy{Seed: opts.Seed},
	}
	e.emitResults = e.Results
	// Compile the WHERE once: the scalar and columnar admission paths
	// share the same compiled predicate kernels. An empty WHERE leaves
	// both filter fields zero, so unfiltered workloads pay nothing.
	if !specs[0].Where.Empty() {
		if opts.InterpretedFilter {
			e.interp = true
		} else {
			e.filter = specs[0].Where.Compile()
		}
	}
	if opts.Shards > 1 {
		e.nShards = opts.Shards
		e.shardAvail = make([]float64, e.nShards)
		e.shardWeight = make([]float64, e.nShards)
		for i := range e.shardWeight {
			e.shardWeight[i] = 1 / float64(e.nShards)
		}
		e.shardDeg = make([]Degradation, e.nShards)
		e.shardCum = make([]Degradation, e.nShards)
		e.shardRouted = make([]uint64, e.nShards)
		if opts.Budget == 0 {
			e.shardCols = make([][][]uint32, e.nShards)
			e.shardLens = make([]int, e.nShards)
		}
	}
	for _, s := range specs {
		e.queries = append(e.queries, s.GroupBy)
		if prev, dup := e.specByRel[s.GroupBy]; dup {
			return nil, fmt.Errorf("core: queries %q and %q share grouping %v", prev, s, s.GroupBy)
		}
		e.specByRel[s.GroupBy] = s
	}
	g, err := feedgraph.New(e.queries)
	if err != nil {
		return nil, err
	}
	e.graph = g
	for _, r := range g.Relations() {
		if _, err := groups.Get(r); err != nil {
			return nil, fmt.Errorf("core: %v (run EstimateGroups over a sample first)", err)
		}
	}
	if err := e.replan(); err != nil {
		return nil, err
	}
	if opts.Adapt.Enabled && opts.Adapt.TrackPhantoms {
		prec := opts.Adapt.SketchPrecision
		if prec == 0 {
			prec = sketch.DefaultPrecision
		}
		e.sketches = make(map[attr.Set]*sketch.HLL, len(g.Phantoms))
		for _, ph := range g.Phantoms {
			h, err := sketch.New(prec)
			if err != nil {
				return nil, err
			}
			e.sketches[ph] = h
		}
	}
	if err := e.initWindowing(); err != nil {
		return nil, err
	}
	e.clock = stream.NewClock(e.epochLen)
	if opts.Store != nil {
		// Started last so a failed construction never leaks the goroutine.
		pol := opts.StoreBackoff
		if pol.Seed == 0 {
			pol.Seed = opts.Seed
		}
		e.persist = newPersister(opts.Store, opts.StoreQueue, pol, e.durable)
	}
	return e, nil
}

// planCandidate runs the planner for the current group counts and applies
// the peak-load repair, without touching the running state.
func (e *Engine) planCandidate() (*choose.Result, error) {
	res, err := e.opts.Planner(e.graph, e.groups, e.opts.M, e.opts.Params)
	if err != nil {
		return nil, err
	}
	if e.opts.PeakEu > 0 {
		var fixed cost.Alloc
		switch e.opts.PeakFix {
		case PeakShift:
			fixed, err = spacealloc.Shift(res.Config, e.groups, res.Alloc, e.opts.Params, e.opts.PeakEu)
		case PeakShrink:
			fixed, err = spacealloc.Shrink(res.Config, e.groups, res.Alloc, e.opts.Params, e.opts.PeakEu)
		default:
			return nil, fmt.Errorf("core: unknown peak-load method %q", e.opts.PeakFix)
		}
		if err != nil {
			return nil, fmt.Errorf("core: peak-load repair: %v", err)
		}
		res.Alloc = fixed
		if res.Cost, err = cost.PerRecord(res.Config, e.groups, fixed, e.opts.Params); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// adopt swaps in a fresh runtime executing the plan. Must only run at
// epoch boundaries (tables empty). HFTA state survives the swap.
func (e *Engine) adopt(res *choose.Result) error {
	if e.agg == nil {
		agg, err := hfta.New(e.queries, e.aggs)
		if err != nil {
			return err
		}
		e.agg = agg
	}
	// Buffered transfers: evictions reach the HFTA through the runtime's
	// buffers instead of a per-eviction sink call, keeping the record hot
	// path allocation-free. The default path is columnar — sealed
	// (keys, aggs) runs folded by the batched MergeRun, one lock hold per
	// touched HFTA shard. A WrapBatchSink hook (chaos/fault injection)
	// forces the per-Eviction batch path, which is what the hook's
	// signature intercepts. Either way FlushEpoch drains the buffers, so
	// every endEpoch read of HFTA state still sees the complete epoch.
	sink := lfta.BatchSink(e.agg.ConsumeBatch)
	if e.opts.WrapBatchSink != nil {
		sink = e.opts.WrapBatchSink(sink)
	}
	if e.nShards > 1 {
		srt, err := lfta.NewSharded(res.Config, res.Alloc, e.aggs, e.opts.Seed, nil, e.nShards)
		if err != nil {
			return err
		}
		if e.opts.WrapBatchSink != nil {
			srt.SetBatchSink(sink, 0)
		} else {
			srt.SetRunSink(e.agg.MergeRun, 0)
		}
		e.retireRuntimeOps()
		e.plan, e.srt = res, srt
	} else {
		rt, err := lfta.New(res.Config, res.Alloc, e.aggs, e.opts.Seed, nil)
		if err != nil {
			return err
		}
		if e.opts.WrapBatchSink != nil {
			rt.SetBatchSink(sink, 0)
		} else {
			rt.SetRunSink(e.agg.MergeRun, 0)
		}
		e.retireRuntimeOps()
		e.plan, e.rt = res, rt
	}
	e.stats.ModeledCost = res.Cost
	return nil
}

// retireRuntimeOps folds the outgoing runtime's counters into the
// cross-replan totals before a new runtime is swapped in.
func (e *Engine) retireRuntimeOps() {
	if e.rt == nil && e.srt == nil {
		return
	}
	ops := e.runtimeOps()
	e.totalOps.Probes += ops.Probes
	e.totalOps.Transfers += ops.Transfers
	e.totalOps.Records += ops.Records
}

// runtimeOps returns the active runtime's cumulative operation counts,
// whichever level shape is deployed.
func (e *Engine) runtimeOps() lfta.Ops {
	if e.srt != nil {
		return e.srt.Ops()
	}
	return e.rt.Ops()
}

// runtimeFlush flushes the active runtime's tables at an epoch boundary.
func (e *Engine) runtimeFlush() {
	if e.srt != nil {
		e.srt.FlushEpoch()
		return
	}
	e.rt.FlushEpoch()
}

// runtimeTableStats returns merged per-relation table counters.
func (e *Engine) runtimeTableStats() map[attr.Set]hashtab.Stats {
	if e.srt != nil {
		return e.srt.TableStats()
	}
	return e.rt.TableStats()
}

// runtimeResetTableStats zeroes the per-table counters.
func (e *Engine) runtimeResetTableStats() {
	if e.srt != nil {
		e.srt.ResetTableStats()
		return
	}
	e.rt.ResetTableStats()
}

// replan plans and adopts unconditionally (initial setup).
func (e *Engine) replan() error {
	res, err := e.planCandidate()
	if err != nil {
		return err
	}
	return e.adopt(res)
}

// Plan exposes the active configuration, allocation and modeled cost.
func (e *Engine) Plan() *choose.Result { return e.plan }

// Graph exposes the feeding graph of the workload.
func (e *Engine) Graph() *feedgraph.Graph { return e.graph }

// Groups returns the group-count table the engine currently plans with.
func (e *Engine) Groups() feedgraph.GroupCounts { return e.groups }

// Process feeds one record. Epoch boundaries (per the queries' time
// bucket) trigger the end-of-epoch flush and, if enabled, adaptive
// re-planning.
//
// Timestamps must be non-decreasing across epoch boundaries: a record
// whose timestamp regresses into an already-closed epoch cannot be
// assigned correctly anymore (its epoch was flushed), so it is dropped
// and counted as Late instead of silently corrupting epoch assignment.
// Configure a stream.OrderedSource upstream to reorder such streams
// within a slack window. Regressions within the open epoch are harmless.
func (e *Engine) Process(rec stream.Record) error {
	if e.filter != nil {
		if !e.filter.Match(rec.Attrs) {
			e.consumed++
			return nil // filtered out before any hash-table work (the F of FTA)
		}
	} else if e.interp {
		if !e.specs[0].MatchWhere(rec.Attrs) {
			e.consumed++
			return nil
		}
	}
	epoch, rolled, late := e.clock.Observe(rec.Time)
	if late {
		// A late record is charged to its *arrival* epoch (the clamped
		// current one); if it is the epoch's first record, the ledger
		// must still open here so the epoch — and its pane — closes
		// with the Late count instead of leaking it.
		if !e.degInit {
			e.degInit = true
			e.deg.Epoch = epoch
		}
		e.consumed++
		e.deg.Offered++
		e.deg.Late++
		if e.srt != nil {
			s := e.srt.ShardOf(&rec)
			e.shardRouted[s]++
			e.shardDeg[s].Offered++
			e.shardDeg[s].Late++
		}
		return nil
	}
	if rolled {
		if err := e.endEpoch(); err != nil {
			return err
		}
	}
	if !e.degInit {
		e.degInit = true
		e.deg.Epoch = epoch
	}
	e.consumed++
	e.deg.Offered++
	if e.srt != nil {
		if !e.processSharded(rec, epoch) {
			return nil
		}
	} else if e.opts.Budget > 0 {
		if !e.admit(rec) {
			e.deg.Dropped++
			return nil
		}
		before := e.rt.Ops()
		e.rt.Process(rec, epoch)
		after := e.rt.Ops()
		e.shedAvail -= float64(after.Probes-before.Probes)*e.opts.Params.C1 +
			float64(after.Transfers-before.Transfers)*e.opts.Params.C2
		e.deg.Processed++
	} else {
		e.stageRecord(rec, epoch)
		e.deg.Processed++
	}
	if len(e.sketches) != 0 {
		for rel, h := range e.sketches {
			e.sketchBuf = rel.Project(rec.Attrs, e.sketchBuf)
			h.AddKey(e.sketchBuf)
		}
	}
	if e.paneSk != nil {
		e.observePaneSketches(rec.Attrs)
	}
	return nil
}

// processSharded routes one on-time record to its shard, charging the
// shard's slice of the global budget and keeping the per-shard ledger in
// lockstep with the global one. It reports whether the record was
// processed (false = shed, already counted as Dropped in both ledgers).
//
// Admission runs in the single-threaded routing path, in stream order, so
// a stateful shed policy (UniformShed's RNG) draws in a deterministic
// sequence regardless of shard count — the property the checkpoint-v2
// byte-identical resume guarantee rests on.
func (e *Engine) processSharded(rec stream.Record, epoch uint32) bool {
	s := e.srt.ShardOf(&rec)
	e.shardRouted[s]++
	sd := &e.shardDeg[s]
	sd.Offered++
	if e.opts.Budget > 0 {
		// Replenish every shard's slice when stream time advances (never
		// on a regression; see admit).
		if !e.shedStarted || rec.Time > e.shedTick {
			e.shedStarted = true
			e.shedTick = rec.Time
			for i := range e.shardAvail {
				e.shardAvail[i] = e.opts.Budget * e.shardWeight[i]
			}
		}
		if !e.shedder.Admit(rec, e.shardAvail[s] <= 0) {
			e.deg.Dropped++
			sd.Dropped++
			return false
		}
		rt := e.srt.Shard(s)
		before := rt.Ops()
		rt.Process(rec, epoch)
		after := rt.Ops()
		e.shardAvail[s] -= float64(after.Probes-before.Probes)*e.opts.Params.C1 +
			float64(after.Transfers-before.Transfers)*e.opts.Params.C2
	} else {
		e.stageShardRecord(s, rec, epoch)
	}
	e.deg.Processed++
	sd.Processed++
	return true
}

// stageRecord scatters one on-time record's attributes into the
// single-runtime staging columns (one indexed store per attribute — the
// transpose happens here, once, instead of a gather at probe time) and
// drains when the run fills. A record width change (possible only if
// the caller switches schemas mid-stream) drains the pending runs
// first, so every staged run stays rectangular.
func (e *Engine) stageRecord(rec stream.Record, epoch uint32) {
	if len(rec.Attrs) != e.stageWidth {
		e.drainStage()
		e.setStageWidth(len(rec.Attrs))
	}
	e.stageEpoch = epoch
	n := e.stageLen
	for a, v := range rec.Attrs {
		e.stageCols[a][n] = v
	}
	e.stageLen = n + 1
	if e.stageLen == stageRun {
		e.drainStage()
	}
}

// stageShardRecord is stageRecord for one shard's staging columns.
func (e *Engine) stageShardRecord(s int, rec stream.Record, epoch uint32) {
	if len(rec.Attrs) != e.stageWidth {
		e.drainStage()
		e.setStageWidth(len(rec.Attrs))
	}
	e.stageEpoch = epoch
	cols := e.shardCols[s]
	n := e.shardLens[s]
	for a, v := range rec.Attrs {
		cols[a][n] = v
	}
	n++
	e.shardLens[s] = n
	if n == stageRun {
		e.srt.Shard(s).ProcessColumns(e.stageView(cols, n), epoch)
		e.shardLens[s] = 0
	}
}

// setStageWidth sizes the staging columns (and the reused view headers)
// for a new record width; existing column storage is retained when the
// width shrinks back.
func (e *Engine) setStageWidth(w int) {
	e.stageWidth = w
	if e.nShards > 1 {
		for s := range e.shardCols {
			for len(e.shardCols[s]) < w {
				e.shardCols[s] = append(e.shardCols[s], make([]uint32, stageRun))
			}
		}
	} else {
		for len(e.stageCols) < w {
			e.stageCols = append(e.stageCols, make([]uint32, stageRun))
		}
	}
	if cap(e.colView) < w {
		e.colView = make([][]uint32, w)
	}
}

// stageView returns the first n records of a staging column set as the
// reused slice-header view ProcessColumns consumes (no copying).
func (e *Engine) stageView(cols [][]uint32, n int) [][]uint32 {
	v := e.colView[:e.stageWidth]
	for a := range v {
		v[a] = cols[a][:n]
	}
	return v
}

// drainStage flushes every staged run into the LFTA. Called when a run
// fills, at epoch boundaries (before the table flush), and before any
// read of runtime counters, so staged records are never observable as
// unprocessed.
func (e *Engine) drainStage() {
	if e.stageLen > 0 {
		e.rt.ProcessColumns(e.stageView(e.stageCols, e.stageLen), e.stageEpoch)
		e.stageLen = 0
	}
	for s := range e.shardCols {
		if e.shardLens[s] > 0 {
			e.srt.Shard(s).ProcessColumns(e.stageView(e.shardCols[s], e.shardLens[s]), e.stageEpoch)
			e.shardLens[s] = 0
		}
	}
}

// admit replenishes the per-time-unit budget when stream time advances
// (never on a regression — an adversarial stream alternating timestamps
// earns nothing) and asks the shed policy whether to process the record.
func (e *Engine) admit(rec stream.Record) bool {
	if !e.shedStarted || rec.Time > e.shedTick {
		e.shedStarted = true
		e.shedTick = rec.Time
		e.shedAvail = e.opts.Budget
	}
	return e.shedder.Admit(rec, e.shedAvail <= 0)
}

// endEpoch flushes the LFTA, closes the epoch's degradation accounting,
// emits finalized results, and runs the online repair, adaptive, and
// checkpoint steps. The checkpoint is written last so it reflects a fully
// closed epoch: the record that triggered the roll is not yet counted in
// the stream position and is replayed on restore.
func (e *Engine) endEpoch() error {
	closed := e.closeEpochState()
	if err := e.maybePeakRepair(); err != nil {
		return err
	}
	if err := e.maybeAdapt(closed.Epoch); err != nil {
		return err
	}
	if e.opts.CheckpointPath != "" {
		if err := e.WriteCheckpointFile(e.opts.CheckpointPath); err != nil {
			return fmt.Errorf("core: checkpoint: %w", err)
		}
	}
	return nil
}

// closeEpochState performs the flush/accounting/emit part of an epoch
// boundary shared by endEpoch and Finish, and returns the closed epoch's
// degradation record. It also measures the flush's actual cost for the
// online peak-load repair.
func (e *Engine) closeEpochState() Degradation {
	e.drainStage()
	closed := e.deg
	e.deg = Degradation{}
	e.degInit = false
	flushBefore := e.runtimeOps()
	e.runtimeFlush()
	flushAfter := e.runtimeOps()
	e.lastFlushCost = float64(flushAfter.Probes-flushBefore.Probes)*e.opts.Params.C1 +
		float64(flushAfter.Transfers-flushBefore.Transfers)*e.opts.Params.C2
	e.stats.Epochs++
	e.degHist = append(e.degHist, closed)
	e.cumDeg.add(closed)
	if e.srt != nil {
		e.closeShardEpoch(closed.Epoch)
	}
	if e.shedder != nil {
		e.shedder.EpochEnd(closed)
	}
	// Persist before emit: emitEpoch drops the epoch's HFTA state when a
	// result handler is installed, so the durable copy must be captured
	// first. The capture is synchronous (cheap row copies); the store I/O
	// runs on the persister goroutine. The pane feed sits between them
	// for the same reason: it reads the epoch's HFTA rows before emit
	// can drop them.
	e.persistEpoch(closed)
	if e.winComposer != nil {
		e.feedPane(closed)
	}
	e.emitEpoch(closed)
	return closed
}

// closeShardEpoch closes the per-shard ledgers alongside the global one:
// each shard's open counters are stamped with the closed epoch, appended
// to the per-shard history, folded into the cumulative per-shard totals,
// and reset — then the budget split is reconciled against the epoch's
// measured per-shard demand. The per-shard ledgers always sum to the
// global ledger, per epoch and cumulatively.
func (e *Engine) closeShardEpoch(epoch uint32) {
	epochShards := make([]Degradation, e.nShards)
	for i := range e.shardDeg {
		e.shardDeg[i].Epoch = epoch
		epochShards[i] = e.shardDeg[i]
		e.shardCum[i].add(e.shardDeg[i])
		e.shardCum[i].Epoch = epoch
		e.shardDeg[i] = Degradation{}
	}
	e.shardHist = append(e.shardHist, epochShards)
	e.reconcileBudget(epochShards)
}

// reconcileBudget re-splits the global per-time-unit budget across shards
// in proportion to the closed epoch's measured per-shard demand (EWMA
// over offered records, floored so no shard starves). A skewed partition
// therefore stops wasting budget on idle shards after one epoch, while a
// uniform stream keeps the even split. Deterministic: the weights are a
// pure function of the stream, so they replay identically and are carried
// by checkpoint format v2.
func (e *Engine) reconcileBudget(epochShards []Degradation) {
	if e.opts.Budget <= 0 {
		return
	}
	var total float64
	for i := range epochShards {
		total += float64(epochShards[i].Offered)
	}
	if total == 0 {
		return
	}
	const alpha = 0.5 // EWMA weight of the newest epoch's demand
	floor := 0.1 / float64(e.nShards)
	var sum float64
	for i := range e.shardWeight {
		w := alpha*(float64(epochShards[i].Offered)/total) + (1-alpha)*e.shardWeight[i]
		if w < floor {
			w = floor
		}
		e.shardWeight[i] = w
		sum += w
	}
	for i := range e.shardWeight {
		e.shardWeight[i] /= sum
	}
}

// maybePeakRepair applies the configured peak-load repair to the live
// allocation once the measured end-of-epoch cost has exceeded PeakEu for
// PeakRepairEpochs consecutive epochs. An unreachable constraint is not
// fatal — shedding remains the backstop — but a failure to adopt the
// repaired plan is.
func (e *Engine) maybePeakRepair() error {
	if e.opts.PeakEu <= 0 || e.opts.PeakRepairEpochs <= 0 {
		return nil
	}
	if e.lastFlushCost <= e.opts.PeakEu {
		e.overPeak = 0
		return nil
	}
	e.overPeak++
	if e.overPeak < e.opts.PeakRepairEpochs {
		return nil
	}
	e.overPeak = 0
	var (
		fixed cost.Alloc
		err   error
	)
	switch e.opts.PeakFix {
	case PeakShrink:
		fixed, err = spacealloc.Shrink(e.plan.Config, e.groups, e.plan.Alloc, e.opts.Params, e.opts.PeakEu)
	default:
		fixed, err = spacealloc.Shift(e.plan.Config, e.groups, e.plan.Alloc, e.opts.Params, e.opts.PeakEu)
	}
	if err != nil {
		return nil // constraint unreachable on the live statistics
	}
	res := &choose.Result{Config: e.plan.Config, Alloc: fixed}
	if res.Cost, err = cost.PerRecord(res.Config, e.groups, fixed, e.opts.Params); err != nil {
		return nil
	}
	if err := e.adopt(res); err != nil {
		return err
	}
	e.stats.PeakRepairs++
	return nil
}

// maybeAdapt runs the adaptive re-planning step for the closed epoch.
func (e *Engine) maybeAdapt(prevEpoch uint32) error {
	if !e.opts.Adapt.Enabled || e.stats.Epochs%e.opts.Adapt.EveryEpochs != 0 {
		return nil
	}
	if e.opts.OnResults == nil {
		// With a result handler the estimates were refreshed inside
		// emitEpoch, before the epoch state was dropped.
		e.refreshGroupEstimates(prevEpoch)
	}
	// Re-evaluate the current plan under the refreshed estimates so the
	// comparison is apples to apples.
	curCost, err := cost.PerRecord(e.plan.Config, e.groups, e.plan.Alloc, e.opts.Params)
	if err != nil {
		curCost = e.plan.Cost
	}
	candidate, err := e.planCandidate()
	if err != nil {
		return err
	}
	if candidate.Cost > curCost*(1-e.opts.Adapt.MinImprovement) {
		e.stats.ModeledCost = curCost
		return nil // not enough improvement: keep the current runtime
	}
	if err := e.adopt(candidate); err != nil {
		return err
	}
	e.stats.Replans++
	return nil
}

// refreshGroupEstimates folds the epoch's measured group counts (from the
// HFTA) and flow lengths (from the LFTA tables) into the planning inputs.
// Queries are measured exactly; phantom estimates scale by the mean drift
// of the queries they cover.
func (e *Engine) refreshGroupEstimates(epoch uint32) {
	drift := 0.0
	n := 0
	for _, q := range e.queries {
		measured := float64(e.agg.GroupCount(q, epoch))
		if measured <= 0 {
			continue
		}
		if old := e.groups[q]; old > 0 {
			drift += measured / old
			n++
		}
		e.groups[q] = measured
	}
	switch {
	case e.sketches != nil:
		// Measured phantom counts from the per-epoch sketches.
		for ph, h := range e.sketches {
			if est := h.Estimate(); est >= 1 {
				e.groups[ph] = est
			}
			h.Reset()
		}
		_ = clampMonotone(e.groups, e.graph)
	case n > 0:
		// No sketches: scale phantom estimates by the queries' mean drift.
		meanDrift := drift / float64(n)
		for _, ph := range e.graph.Phantoms {
			if old := e.groups[ph]; old > 0 {
				e.groups[ph] = old * meanDrift
			}
		}
		_ = clampMonotone(e.groups, e.graph)
	}
	// Flow lengths measured per raw relation feed the rate model. The
	// table counters are reset afterwards so the next measurement covers
	// one epoch, not the whole history.
	stats := e.runtimeTableStats()
	flow := make(map[attr.Set]float64, len(stats))
	for rel, st := range stats {
		flow[rel] = st.AvgFlowLength()
	}
	e.runtimeResetTableStats()
	e.installFlowLens(flow)
}

// installFlowLens records measured flow lengths and wires them into the
// cost model; checkpoint format v2 carries the map so a restored engine
// re-plans from the same measurements.
func (e *Engine) installFlowLens(flow map[attr.Set]float64) {
	e.flowLens = flow
	e.opts.Params.FlowLen = func(rel attr.Set) float64 {
		if l, ok := flow[rel]; ok {
			return l
		}
		return 1
	}
}

// clampMonotone repairs g_R ≤ g_S for R ⊆ S after drift scaling.
func clampMonotone(groups feedgraph.GroupCounts, g *feedgraph.Graph) error {
	rels := g.Relations()
	// Process wider relations last so they absorb the max of their subsets.
	attr.SortSets(rels)
	for i := len(rels) - 1; i >= 0; i-- {
		s := rels[i]
		for _, r := range rels {
			if r.ProperSubsetOf(s) && groups[r] > groups[s] {
				groups[s] = groups[r]
			}
		}
	}
	return groups.CheckMonotone()
}

// emitEpoch delivers one closed epoch to the result handler and drops its
// state. Adaptive group-count refreshes read the epoch's counts before
// this runs (refreshGroupEstimates is called from maybeAdapt after emit
// only when no handler is installed — with a handler, the counts are
// captured here first). A failing row source is retried on the engine's
// backoff schedule (capped exponential with seeded jitter — the same
// discipline as the store persister) before the query counts as a
// ResultError; errors are counted in Stats, the first one is propagated
// from Finish, and the remaining queries of the epoch are still
// delivered.
func (e *Engine) emitEpoch(closed Degradation) {
	if e.opts.OnResults == nil {
		return
	}
	epoch := closed.Epoch
	if e.opts.Adapt.Enabled {
		// Capture measured group counts before the state is dropped.
		e.refreshGroupEstimates(epoch)
	}
	for _, q := range e.queries {
		var rows []hfta.Row
		err := e.emitRetry.Retry(func() error {
			var rerr error
			rows, rerr = e.emitResults(q, epoch)
			return rerr
		})
		if err != nil {
			e.stats.ResultErrors++
			if e.firstResultErr == nil {
				e.firstResultErr = fmt.Errorf("core: emitting epoch %d of %v: %w", epoch, q, err)
			}
			continue
		}
		e.opts.OnResults(q, epoch, rows, closed)
	}
	e.agg.Drop(epoch)
}

// Finish flushes the final epoch and returns the first error swallowed
// while emitting results, if any. Call once after the last record. Finish
// does not write a checkpoint: the checkpoint file (if configured) stays
// at the last closed epoch boundary, so a later restore replays the final
// epoch in full.
func (e *Engine) Finish() error {
	if e.degInit {
		e.closeEpochState()
	}
	if e.winComposer != nil {
		// Flush trailing windows, including partially-filled ones.
		e.deliverWindows(e.winComposer.CloseAll())
	}
	if e.persist != nil {
		// Drain the persister so every finalized epoch has been resolved
		// (persisted or recorded as unpersisted) before the caller reads
		// Stats or closes the store.
		e.persist.stop()
	}
	return e.firstResultErr
}

// ProcessColumnBatch feeds a column-major batch of records — the
// vectorized admission path. The compiled WHERE runs over whole columns
// into the batch's selection bitmap (b.Sel); dead lanes are never
// compacted away, the selection threads through shard routing and the
// probe setup instead. Epoch rollovers are found by scanning the
// timestamp column at the selected lanes (filtered records never touch
// the clock, exactly as in the scalar path), and the batch is split at
// each boundary so ledger, checkpoint, pane, and persistence semantics
// are unchanged: a mid-batch checkpoint records the stream position
// strictly before the rolling record, as Process would.
//
// Outcomes — results, ledgers, stream position, checkpoint contents —
// are identical to feeding the batch through Process record by record;
// the engine equivalence suite pins this. Overload control (Budget > 0)
// and the interpreted-filter baseline need per-record admission and
// take exactly that scalar path.
func (e *Engine) ProcessColumnBatch(b *stream.ColumnBatch) error {
	n := b.Len()
	if n == 0 {
		return nil
	}
	if len(b.Time) != n {
		return fmt.Errorf("core: column batch of %d records has %d timestamps", n, len(b.Time))
	}
	if e.opts.Budget > 0 || e.interp {
		// Shedding charges each record's measured cost before admitting
		// the next, and the interpreted baseline exists to measure the
		// per-record DNF walk: both run the scalar path row by row.
		for i := 0; i < n; i++ {
			e.rowBuf = b.Row(i, e.rowBuf)
			if err := e.Process(stream.Record{Attrs: e.rowBuf, Time: b.Time[i]}); err != nil {
				return err
			}
		}
		return nil
	}

	// Vectorized WHERE into the batch's selection vector; an empty WHERE
	// selects every lane.
	sel := selvec.Grow(selvec.Bitmap(b.Sel), n)
	if e.filter != nil {
		e.filter.EvalColumns(b.Cols, n, sel)
	} else {
		sel.SetAll(n)
	}
	b.Sel = sel

	width := b.Width()
	base := e.consumed
	m := sel.Count(n)

	// Shard routing for every selected lane up front (late lanes route
	// too: their ledgers are per-shard), compact in ascending lane order.
	var six []int32
	if e.srt != nil && m > 0 {
		if cap(e.shardIdx) < m {
			e.shardIdx = make([]int32, m)
		}
		six = e.shardIdx[:m]
		e.srt.ShardColumns(b.Cols, n, sel, six)
	}
	if width != e.stageWidth && m > 0 {
		e.drainStage()
		e.setStageWidth(width)
	}

	// Sketch and pane accumulation need record-major rows; gather only
	// when those subsystems are active.
	needRows := len(e.sketches) != 0 || e.paneSk != nil

	// Unsharded epoch segment: the on-time selected lanes since the last
	// roll, flushed through the selection-aware probe with no compaction.
	seg := selvec.Grow(e.segSel, n)
	seg.Clear(n)
	e.segSel = seg
	segCount := 0
	var segEpoch uint32

	k := 0 // compact index into six, advancing with each selected lane
	nw := selvec.Words(n)
	for wi := 0; wi < nw; wi++ {
		for w := sel[wi]; w != 0; w &= w - 1 {
			i := wi<<6 + bits.TrailingZeros64(w)
			epoch, rolled, late := e.clock.Observe(b.Time[i])
			if late {
				if !e.degInit {
					e.degInit = true
					e.deg.Epoch = epoch
				}
				e.deg.Offered++
				e.deg.Late++
				if e.srt != nil {
					s := six[k]
					e.shardRouted[s]++
					e.shardDeg[s].Offered++
					e.shardDeg[s].Late++
				}
				k++
				continue
			}
			if rolled {
				if e.rt != nil && segCount > 0 {
					// Flush the closing epoch's segment before the epoch
					// close; staged scalar records drain first so probe
					// order matches the record-by-record path.
					e.drainStage()
					e.rt.ProcessColumnsSel(b.Cols, n, seg, segEpoch)
					seg.Clear(n)
					segCount = 0
				}
				// The checkpoint must record the position strictly before
				// the rolling record, filtered lanes included.
				e.consumed = base + uint64(i)
				if err := e.endEpoch(); err != nil {
					return err
				}
			}
			if !e.degInit {
				e.degInit = true
				e.deg.Epoch = epoch
			}
			e.deg.Offered++
			e.deg.Processed++
			if e.srt != nil {
				s := int(six[k])
				e.shardRouted[s]++
				sd := &e.shardDeg[s]
				sd.Offered++
				sd.Processed++
				// Lane-major scatter into the shard's staging run — the
				// same arena the scalar path fills, so mixed admission
				// keeps one probe order.
				e.stageEpoch = epoch
				cols := e.shardCols[s]
				sn := e.shardLens[s]
				for a := 0; a < width; a++ {
					cols[a][sn] = b.Cols[a][i]
				}
				sn++
				e.shardLens[s] = sn
				if sn == stageRun {
					e.srt.Shard(s).ProcessColumns(e.stageView(cols, sn), epoch)
					e.shardLens[s] = 0
				}
			} else {
				seg.Set(i)
				segCount++
				segEpoch = epoch
			}
			if needRows {
				e.rowBuf = b.Row(i, e.rowBuf)
				if len(e.sketches) != 0 {
					for rel, h := range e.sketches {
						e.sketchBuf = rel.Project(e.rowBuf, e.sketchBuf)
						h.AddKey(e.sketchBuf)
					}
				}
				if e.paneSk != nil {
					e.observePaneSketches(e.rowBuf)
				}
			}
			k++
		}
	}
	if e.rt != nil && segCount > 0 {
		e.drainStage()
		e.rt.ProcessColumnsSel(b.Cols, n, seg, segEpoch)
	}
	e.consumed = base + uint64(n)
	return nil
}

// Run processes an entire source and finishes. Sources that can decode
// into columns (stream.ColumnSource) run through the vectorized batch
// path when no per-record admission is required; the rest take the
// scalar loop.
func (e *Engine) Run(src stream.Source) error {
	if cs, ok := src.(stream.ColumnSource); ok && e.opts.Budget == 0 && !e.interp {
		var cb stream.ColumnBatch
		for {
			if stream.ReadColumns(cs, &cb, stream.ColumnBatchLen) == 0 {
				break
			}
			if err := e.ProcessColumnBatch(&cb); err != nil {
				return err
			}
		}
		if err := src.Err(); err != nil {
			return err
		}
		return e.Finish()
	}
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := e.Process(rec); err != nil {
			return err
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	return e.Finish()
}

// Results returns the finalized rows of one query for an epoch, with the
// query's HAVING clause applied.
func (e *Engine) Results(rel attr.Set, epoch uint32) ([]hfta.Row, error) {
	spec, ok := e.specByRel[rel]
	if !ok {
		return nil, fmt.Errorf("core: %v is not a registered query", rel)
	}
	rows := e.agg.Rows(rel, epoch)
	out := rows[:0:0]
	for _, r := range rows {
		if spec.MatchHaving(r.Aggs) {
			out = append(out, r)
		}
	}
	return out, nil
}

// AllResults returns every finalized row across queries and epochs with
// HAVING applied.
func (e *Engine) AllResults() []hfta.Row {
	var out []hfta.Row
	for _, r := range e.agg.AllRows() {
		if spec := e.specByRel[r.Rel]; spec == nil || spec.MatchHaving(r.Aggs) {
			out = append(out, r)
		}
	}
	return out
}

// Epochs lists the epochs with results for a query.
func (e *Engine) Epochs(rel attr.Set) []uint32 { return e.agg.Epochs(rel) }

// Ops returns cumulative LFTA operation counts, across re-plans and
// summed over shards.
func (e *Engine) Ops() lfta.Ops {
	e.drainStage()
	ops := e.runtimeOps()
	return lfta.Ops{
		Probes:    e.totalOps.Probes + ops.Probes,
		Transfers: e.totalOps.Transfers + ops.Transfers,
		Records:   e.totalOps.Records + ops.Records,
	}
}

// NumShards returns the number of LFTA shards the engine runs (1 for the
// single-runtime deployment).
func (e *Engine) NumShards() int {
	if e.nShards > 1 {
		return e.nShards
	}
	return 1
}

// ShardDegradations returns each shard's cumulative overload accounting —
// closed epochs plus the open one. The entries sum to Stats().Degradation.
// Nil when the engine runs unsharded.
func (e *Engine) ShardDegradations() []Degradation {
	if e.nShards <= 1 {
		return nil
	}
	out := make([]Degradation, e.nShards)
	for i := range out {
		out[i] = e.shardCum[i]
		out[i].add(e.shardDeg[i])
	}
	return out
}

// ShardEpochDegradations returns the per-shard ledgers of every closed
// epoch, oldest first; each inner slice has one entry per shard and sums
// exactly to the corresponding EpochDegradations entry. Nil when the
// engine runs unsharded.
func (e *Engine) ShardEpochDegradations() [][]Degradation {
	if e.nShards <= 1 {
		return nil
	}
	out := make([][]Degradation, len(e.shardHist))
	for i, epoch := range e.shardHist {
		out[i] = append([]Degradation(nil), epoch...)
	}
	return out
}

// ShardPositions returns the number of records routed to each shard since
// construction or restore (including late and shed ones) — the per-shard
// stream positions checkpoint format v2 records. Nil when unsharded.
func (e *Engine) ShardPositions() []uint64 {
	if e.nShards <= 1 {
		return nil
	}
	return append([]uint64(nil), e.shardRouted...)
}

// Stats returns execution statistics. Stats.Degradation is cumulative
// across closed epochs plus the open one (its Epoch field is meaningless
// in the aggregate).
func (e *Engine) Stats() Stats {
	s := e.stats
	s.Ops = e.Ops()
	s.Degradation = e.cumDeg
	s.Degradation.add(e.deg)
	s.Durability = e.Durability()
	return s
}

// Consumed returns the number of records offered to Process since
// construction or restore — including filtered, late, and shed records —
// i.e. the stream position a checkpoint records.
func (e *Engine) Consumed() uint64 { return e.consumed }

// EpochDegradations returns the per-epoch overload accounting of every
// closed epoch, oldest first.
func (e *Engine) EpochDegradations() []Degradation {
	return append([]Degradation(nil), e.degHist...)
}

// TableDiagnostic compares one LFTA table's modeled and measured
// behaviour — the operator's view of how well the planner's assumptions
// hold on the live stream.
type TableDiagnostic struct {
	Rel          attr.Set
	IsQuery      bool
	IsRaw        bool
	Buckets      int
	Groups       float64 // planner's g_R
	ModeledRate  float64 // collision rate the plan assumed
	MeasuredRate float64 // observed since the last stats reset
	FlowLength   float64 // observed records per bucket occupancy
	Probes       uint64
}

// Diagnostics is the operator's view of the running engine: per-table
// modeled-vs-measured statistics, plus the degradation accounting of
// every closed epoch and in total.
type Diagnostics struct {
	Tables []TableDiagnostic
	Epochs []Degradation // closed epochs' overload accounting, oldest first
	Total  Degradation   // cumulative, including the open epoch

	// Durability is the durable epoch store's ledger: which closed epochs
	// reached the store and which degraded to unpersisted.
	Durability Durability

	// Windows holds the ledger of every closed sliding window (empty
	// for tumbling workloads); RetainedPanes is the composer's live
	// pane count.
	Windows       []hfta.WindowLedger
	RetainedPanes int
}

// Diagnostics reports modeled-vs-measured statistics for every
// instantiated table of the active plan, and the engine's degradation
// history. In adaptive mode the measured table window is the current
// epoch (stats reset at each refresh).
func (e *Engine) Diagnostics() (*Diagnostics, error) {
	e.drainStage()
	rates, err := cost.Rates(e.plan.Config, e.groups, e.plan.Alloc, e.opts.Params)
	if err != nil {
		return nil, err
	}
	stats := e.runtimeTableStats()
	var out []TableDiagnostic
	for _, r := range e.plan.Config.Rels {
		st := stats[r]
		out = append(out, TableDiagnostic{
			Rel:          r,
			IsQuery:      e.plan.Config.IsQuery(r),
			IsRaw:        e.plan.Config.IsRaw(r),
			Buckets:      e.plan.Alloc[r],
			Groups:       e.groups[r],
			ModeledRate:  rates[r],
			MeasuredRate: st.CollisionRate(),
			FlowLength:   st.AvgFlowLength(),
			Probes:       st.Probes,
		})
	}
	total := e.cumDeg
	total.add(e.deg)
	d := &Diagnostics{
		Tables:     out,
		Epochs:     e.EpochDegradations(),
		Total:      total,
		Durability: e.Durability(),
	}
	if e.winComposer != nil {
		d.Windows = e.WindowLedgers()
		d.RetainedPanes = e.winComposer.PaneCount()
	}
	return d, nil
}

// EstimateGroups measures g_R for every relation of the queries' feeding
// graph from a sample of records — how experiments (and deployments with
// a warm-up window) obtain the planner's inputs.
func EstimateGroups(sample []stream.Record, queries []attr.Set) (feedgraph.GroupCounts, error) {
	g, err := feedgraph.New(queries)
	if err != nil {
		return nil, err
	}
	out := feedgraph.GroupCounts{}
	for _, r := range g.Relations() {
		out[r] = float64(gen.CountGroups(sample, r))
	}
	return out, nil
}
