package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/stream"
)

// TestAdaptiveSketchTracking: with phantom tracking enabled, the adaptive
// engine's group-count table converges to the stream's true per-epoch
// cardinalities for candidate phantoms — even when the initial estimates
// are wildly wrong — and results stay exact.
func TestAdaptiveSketchTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 2500, 100)
	if err != nil {
		t.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 60000, 60)
	qs := []attr.Set{
		attr.MustParseSet("AB"), attr.MustParseSet("BC"),
		attr.MustParseSet("BD"), attr.MustParseSet("CD"),
	}
	// Deliberately wrong seed estimates: everything tiny.
	groups, err := EstimateGroups(recs[:500], qs)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(pairSQL, groups, Options{
		M:    30000,
		Seed: 3,
		Adapt: AdaptOptions{
			Enabled:       true,
			EveryEpochs:   1,
			TrackPhantoms: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	// Exactness unaffected by tracking.
	want := hfta.Reference(recs, qs, lfta.CountStar, 10)
	if !hfta.Equal(e.AllResults(), want) {
		t.Fatal("results differ from reference with sketch tracking")
	}
	// The ABCD phantom estimate should now be near its true per-epoch
	// cardinality (records per epoch = 10000, universe 2500 → nearly all
	// groups appear each epoch).
	abcd := attr.MustParseSet("ABCD")
	trueG := float64(gen.CountGroups(recs[:10000], abcd))
	got := e.Groups()[abcd]
	if math.Abs(got-trueG)/trueG > 0.15 {
		t.Errorf("tracked g(ABCD) = %.0f; true per-epoch ≈ %.0f", got, trueG)
	}
	// Monotonicity maintained after sketch updates.
	if err := e.Groups().CheckMonotone(); err != nil {
		t.Errorf("group table not monotone: %v", err)
	}
}

// TestSketchTrackingImprovesPlansUnderDrift: start from estimates for a
// low-cardinality phase; after the universe explodes, the sketch-tracked
// engine should re-plan at least as effectively as the drift-scaling one
// (both must re-plan, and modeled costs must not diverge badly).
func TestSketchTrackingImprovesPlansUnderDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	schema := stream.MustSchema(4)
	small, err := gen.UniformUniverse(rng, schema, 100, 20)
	if err != nil {
		t.Fatal(err)
	}
	skewTuples := make([][]uint32, 3000)
	for i := range skewTuples {
		skewTuples[i] = []uint32{rng.Uint32(), rng.Uint32(), uint32(i % 2), uint32(i % 3)}
	}
	big, err := gen.NewUniverse(schema, skewTuples)
	if err != nil {
		t.Fatal(err)
	}
	recs := append([]stream.Record(nil), gen.Uniform(rng, small, 20000, 50)...)
	for i, r := range gen.Uniform(rng, big, 20000, 50) {
		recs = append(recs, stream.Record{Attrs: r.Attrs, Time: 50 + uint32(i*50/20000)})
	}
	qs := []attr.Set{
		attr.MustParseSet("AB"), attr.MustParseSet("BC"),
		attr.MustParseSet("BD"), attr.MustParseSet("CD"),
	}
	groups, err := EstimateGroups(recs[:20000], qs)
	if err != nil {
		t.Fatal(err)
	}
	run := func(track bool) *Engine {
		// Each run gets its own copy: the adaptive engine mutates the
		// group table in place.
		gcopy := feedgraph.GroupCounts{}
		for r, g := range groups {
			gcopy[r] = g
		}
		e, err := New(pairSQL, gcopy, Options{
			M:    40000,
			Seed: 5,
			Adapt: AdaptOptions{
				Enabled:        true,
				EveryEpochs:    1,
				MinImprovement: 0.02,
				TrackPhantoms:  track,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(stream.NewSliceSource(recs)); err != nil {
			t.Fatal(err)
		}
		return e
	}
	tracked := run(true)
	if tracked.Stats().Replans == 0 {
		t.Error("sketch-tracked engine never re-planned under drift")
	}
	// Tracked estimates for ABCD reflect phase 2 (~2000+ per epoch), not
	// phase 1 (100).
	if g := tracked.Groups()[attr.MustParseSet("ABCD")]; g < 1000 {
		t.Errorf("tracked g(ABCD) = %.0f; expected phase-2 scale", g)
	}
}
