package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"reflect"

	"repro/internal/hashtab"
	"repro/internal/hfta"
	"repro/internal/stream"
)

// Golden checkpoint images. The files under testdata/ckpt were written by
// the engine BEFORE the hash-table layout switched to the fingerprint-
// tagged split arrays, so these tests prove the compatibility claim the
// checkpoint format makes: images never serialize table internals (they
// are written at epoch boundaries, tables empty), so a layout change must
// restore old images onto the new tables with nothing lost — same resumed
// answers, and a re-serialized checkpoint byte-identical to the original.
//
// Regenerate (only when the checkpoint FORMAT itself changes, never for a
// table-layout change) with:
//
//	MAGG_WRITE_GOLDEN=1 go test -run TestGoldenCheckpoint ./internal/core

const goldenDir = "testdata/ckpt"

// goldenPlainOpts is the unsharded, non-shedding deployment of the plain
// golden images; v1 and v2 restore to identical state for it, which the
// byte-identity check across versions relies on.
func goldenPlainOpts() Options { return Options{M: 8000, Seed: 3} }

// goldenShardedOpts is the sharded-and-shedding deployment of the
// sharded golden image (v2 only: v1 cannot carry its state).
func goldenShardedOpts() Options {
	return Options{
		M: 8000, Seed: 3, Shards: 4,
		Budget: 900, Shed: NewUniformShed(0.5, 99),
	}
}

// goldenCrashAt is the record index the golden run "crashed" at
// (mid-epoch, past several boundaries; see TestCheckpointRoundTrip).
const goldenCrashAt = 17000

// writeGolden runs the workload past the crash point with the engine
// writing its checkpoint at every epoch boundary, keeps the last
// boundary image as the golden v2 file, and (when v1Path is non-empty)
// derives the matching v1 image by restoring a fresh engine from that
// boundary and serializing it in the v1 format.
func writeGolden(t *testing.T, opts Options, v2Path, v1Path string) {
	t.Helper()
	recs, groups := testWorkload(t, 30000)
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	copts := opts
	copts.CheckpointPath = v2Path
	e, err := New(pairSQL, groups, copts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < goldenCrashAt; i++ {
		if err := e.Process(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().Epochs == 0 {
		t.Fatal("golden run never crossed an epoch boundary")
	}
	t.Logf("wrote %s", v2Path)
	if v1Path == "" {
		return
	}
	r, err := New(pairSQL, groups, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RestoreCheckpointFile(v2Path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.checkpointVersion(&buf, ckptVersionV1); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v1Path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d bytes)", v1Path, buf.Len())
}

func goldenPath(name string) string { return filepath.Join(goldenDir, name) }

func maybeWriteGolden(t *testing.T) {
	t.Helper()
	if os.Getenv("MAGG_WRITE_GOLDEN") == "" {
		return
	}
	writeGolden(t, goldenPlainOpts(), goldenPath("plain_v2.ckpt"), goldenPath("plain_v1.ckpt"))
	writeGolden(t, goldenShardedOpts(), goldenPath("sharded_v2.ckpt"), "")
}

// TestGoldenCheckpointRestore restores each pre-layout-change image onto
// the current table layout, replays the remaining stream, and requires
// the answers of an uninterrupted run. The whole matrix runs once per
// tag-scan kernel: a restored table must behave identically whether the
// replay probes through the vector kernel or the portable one.
func TestGoldenCheckpointRestore(t *testing.T) {
	maybeWriteGolden(t)
	recs, groups := testWorkload(t, 30000)
	cases := []struct {
		file string
		opts Options
	}{
		{"plain_v1.ckpt", goldenPlainOpts()},
		{"plain_v2.ckpt", goldenPlainOpts()},
	}
	defer hashtab.SetSIMD(hashtab.SIMDEnabled())
	kernels := []bool{false}
	if hashtab.SIMDAvailable() {
		kernels = append(kernels, true)
	}
	for _, simd := range kernels {
		hashtab.SetSIMD(simd)
		for _, tc := range cases {
			t.Run(tc.file+"/kernel="+hashtab.KernelName(), func(t *testing.T) {
				// Reference: the same deployment run uninterrupted.
				ref, err := New(pairSQL, groups, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := ref.Run(stream.NewSliceSource(recs)); err != nil {
					t.Fatal(err)
				}
				want := ref.AllResults()

				e, err := New(pairSQL, groups, tc.opts)
				if err != nil {
					t.Fatal(err)
				}
				consumed, err := e.RestoreCheckpointFile(goldenPath(tc.file))
				if err != nil {
					t.Fatal(err)
				}
				if consumed == 0 || consumed >= goldenCrashAt {
					t.Fatalf("restored stream position %d, want in (0, %d)", consumed, goldenCrashAt)
				}
				src := stream.NewSkipSource(stream.NewSliceSource(recs), consumed)
				if err := e.Run(src); err != nil {
					t.Fatal(err)
				}
				if !hfta.Equal(e.AllResults(), want) {
					t.Error("resumed results differ from uninterrupted run")
				}
				refDeg := ref.Stats().Degradation
				resDeg := e.Stats().Degradation
				if refDeg != resDeg {
					t.Errorf("resumed degradation ledger %+v, want %+v", resDeg, refDeg)
				}
			})
		}
	}
}

// TestGoldenShardedCheckpointRestore covers the sharded golden. Its
// image carries a shed-policy history (UniformShed EWMA and RNG
// position, budget-split weights, a degradation ledger with drops) that
// the pre-group-layout engine accumulated: the old one-slot tables made
// every collision an eviction transfer, and those transfers exhausted
// the 900-unit budget. The grouped tables do the same work in far fewer
// weighted operations, so an uninterrupted run of this deployment today
// never sheds — no fresh run can reproduce the image's history, and
// comparing against one would pin the old cost physics, not checkpoint
// compatibility. What the golden must keep proving is that the
// pre-layout image restores losslessly and remains a valid crash point:
// resuming it straight through and resuming it with a second
// crash+restore in between must emit identically and end in identical
// ledgers, with the carried policy state round-tripping through the new
// engine's own v2 checkpoints. (Byte-level restore fidelity is pinned
// separately by TestGoldenCheckpointByteIdentity.)
func TestGoldenShardedCheckpointRestore(t *testing.T) {
	maybeWriteGolden(t)
	recs, groups := testWorkload(t, 30000)
	golden := goldenPath("sharded_v2.ckpt")

	// Reference: restore the golden image and run the remainder straight.
	wantEmit := emissionMap{}
	ropts := goldenShardedOpts()
	ropts.OnResults = collectEmissions(t, wantEmit)
	ref, err := New(pairSQL, groups, ropts)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := ref.RestoreCheckpointFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if restored == 0 || restored >= goldenCrashAt {
		t.Fatalf("restored stream position %d, want in (0, %d)", restored, goldenCrashAt)
	}
	if d := ref.Stats().Degradation; d.Dropped == 0 {
		t.Fatal("golden image carried no shed history; the sharded golden is vacuous")
	}
	if err := ref.Run(stream.NewSkipSource(stream.NewSliceSource(recs), restored)); err != nil {
		t.Fatal(err)
	}
	want := ref.AllResults()

	// Crash-again run: restore the same image, checkpoint at every
	// boundary, die mid-epoch past the restore point.
	ckpt := filepath.Join(t.TempDir(), "resumed.ckpt")
	copts := goldenShardedOpts()
	copts.CheckpointPath = ckpt
	gotEmit := emissionMap{}
	copts.OnResults = collectEmissions(t, gotEmit)
	e1, err := New(pairSQL, groups, copts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.RestoreCheckpointFile(golden); err != nil {
		t.Fatal(err)
	}
	const crashAgainAt = 25000
	for i := restored; i < crashAgainAt; i++ {
		if err := e1.Process(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// No Finish: the process is gone.

	// Resume from the new engine's own checkpoint of the restored state.
	popts := goldenShardedOpts()
	popts.OnResults = collectEmissions(t, gotEmit)
	e2, err := New(pairSQL, groups, popts)
	if err != nil {
		t.Fatal(err)
	}
	consumed, err := e2.RestoreCheckpointFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if consumed <= restored || consumed > crashAgainAt {
		t.Fatalf("re-crash restored position %d, want in (%d, %d]", consumed, restored, crashAgainAt)
	}
	if err := e2.Run(stream.NewSkipSource(stream.NewSliceSource(recs), consumed)); err != nil {
		t.Fatal(err)
	}

	if len(gotEmit) != len(wantEmit) {
		t.Fatalf("crash+resume emitted %d (query, epoch) results; straight resume emitted %d",
			len(gotEmit), len(wantEmit))
	}
	for k, w := range wantEmit {
		if gotEmit[k] != w {
			t.Errorf("epoch %d of %v differs from the straight resume", k.epoch, k.rel)
		}
	}
	if !hfta.Equal(e2.AllResults(), want) {
		t.Error("re-crashed results differ from the straight resume")
	}
	dRef, dGot := ref.Stats().Degradation, e2.Stats().Degradation
	if dRef != dGot {
		t.Errorf("re-crashed cumulative ledger %+v; straight resume %+v", dGot, dRef)
	}
	refShards, gotShards := ref.ShardDegradations(), e2.ShardDegradations()
	for i := range refShards {
		if refShards[i] != gotShards[i] {
			t.Errorf("shard %d re-crashed ledger %+v; straight resume %+v", i, gotShards[i], refShards[i])
		}
	}
}

// TestGoldenCheckpointByteIdentity proves the stronger claim: an engine
// restored from a pre-layout-change image serializes back to the exact
// bytes of the golden v2 image — nothing in the checkpoint state was
// reinterpreted by the new table layout. Restoring the v1 image must
// also produce the golden v2 bytes (its deployment carries no
// v2-section state, so v1 and v2 restore identically).
func TestGoldenCheckpointByteIdentity(t *testing.T) {
	maybeWriteGolden(t)
	_, groups := testWorkload(t, 30000)
	wantV2 := func(name string) []byte {
		data, err := os.ReadFile(goldenPath(name))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		file, want string
		opts       Options
	}{
		{"plain_v1.ckpt", "plain_v2.ckpt", goldenPlainOpts()},
		{"plain_v2.ckpt", "plain_v2.ckpt", goldenPlainOpts()},
		{"sharded_v2.ckpt", "sharded_v2.ckpt", goldenShardedOpts()},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			e, err := New(pairSQL, groups, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.RestoreCheckpointFile(goldenPath(tc.file)); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := e.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), wantV2(tc.want)) {
				t.Errorf("re-serialized checkpoint differs from golden %s", tc.want)
			}
		})
	}
}

// --- windowed v4 golden ---

// goldenWindowedSQL is the windowed workload of the v4 golden image:
// overlapping 3/2 windows with all three sketch kinds, so the image
// carries live panes with serialized sketch partials mid-window.
func goldenWindowedSQL() []string { return windowSQL(3, 2) }

func maybeWriteGoldenWindowed(t *testing.T) {
	t.Helper()
	if os.Getenv("MAGG_WRITE_GOLDEN") == "" {
		return
	}
	recs, _ := testWorkload(t, 30000)
	if err := os.MkdirAll(goldenDir, 0o755); err != nil {
		t.Fatal(err)
	}
	copts := goldenPlainOpts()
	copts.CheckpointPath = goldenPath("windowed_v4.ckpt")
	e, err := NewFromSample(goldenWindowedSQL(), recs, copts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < goldenCrashAt; i++ {
		if err := e.Process(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats().Epochs == 0 {
		t.Fatal("windowed golden run never crossed an epoch boundary")
	}
	t.Logf("wrote %s", copts.CheckpointPath)
}

// TestGoldenWindowedCheckpoint pins the v4 format: the golden image must
// keep restoring (with its panes and sketch blobs carried verbatim,
// proven by byte-identical re-serialization) and resuming to the same
// window output as an uninterrupted run.
func TestGoldenWindowedCheckpoint(t *testing.T) {
	maybeWriteGoldenWindowed(t)
	recs, _ := testWorkload(t, 30000)
	img, err := os.ReadFile(goldenPath("windowed_v4.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if img[4] != 4 {
		t.Fatalf("windowed golden version = %d; want 4", img[4])
	}

	ref, err := NewFromSample(goldenWindowedSQL(), recs, goldenPlainOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}

	e, err := NewFromSample(goldenWindowedSQL(), recs, goldenPlainOpts())
	if err != nil {
		t.Fatal(err)
	}
	consumed, err := e.Restore(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	if consumed == 0 || consumed >= goldenCrashAt {
		t.Fatalf("restored stream position %d, want in (0, %d)", consumed, goldenCrashAt)
	}
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), img) {
		t.Error("restored engine does not re-serialize the windowed golden byte-identically")
	}
	if err := e.Run(stream.NewSkipSource(stream.NewSliceSource(recs), consumed)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.WindowLedgers(), ref.WindowLedgers()) {
		t.Error("resumed window ledgers differ from the uninterrupted run")
	}
	if !reflect.DeepEqual(e.WindowResults(), ref.WindowResults()) {
		t.Error("resumed windowed rows differ from the uninterrupted run")
	}
}
