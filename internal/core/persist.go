package core

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/backoff"
	"repro/internal/epochstore"
	"repro/internal/lfta"
)

// Durable epoch persistence. When Options.Store is set, every finalized
// epoch's results are handed to an asynchronous persister goroutine over
// a bounded queue and appended to the epoch store with retries
// (capped-exponential backoff with seeded jitter). The engine's hot path
// never blocks on the store: if the store is down past the retry budget,
// or the queue is full because persistence cannot keep up, the epoch is
// recorded as unpersisted in the durability ledger and ingest continues —
// graceful degradation, surfaced through Stats/Diagnostics exactly like
// the overload ledger. Checkpoints (format v3) carry the ledger so a
// resumed run still knows which epochs never reached the store.

// Durability is the durable-store accounting: how many closed epochs
// reached the store, and which did not (with why).
type Durability struct {
	// Enabled reports whether a store is attached to the engine.
	Enabled bool
	// Persisted counts epochs whose every query relation reached the store.
	Persisted int
	// Unpersisted lists closed epochs that did not fully persist,
	// ascending. These epochs' answers were still emitted and counted; only
	// their durable copies are missing.
	Unpersisted []uint32
	// QueueFull counts epochs lost to a saturated persist queue (a subset
	// of Unpersisted's causes).
	QueueFull int
	// LastError is the most recent persistence failure, "" if none.
	LastError string
}

// EpochUnpersisted reports whether epoch is in the unpersisted set.
func (d Durability) EpochUnpersisted(epoch uint32) bool {
	for _, e := range d.Unpersisted {
		if e == epoch {
			return true
		}
	}
	return false
}

// durableLedger tracks persistence outcomes. The persister goroutine
// writes it; Stats/Diagnostics read it from the engine's goroutine.
type durableLedger struct {
	mu          sync.Mutex
	persisted   int
	unpersisted map[uint32]string // epoch -> failure reason
	queueFull   int
	lastErr     string
}

func newDurableLedger() *durableLedger {
	return &durableLedger{unpersisted: make(map[uint32]string)}
}

func (l *durableLedger) markPersisted(epoch uint32) {
	l.mu.Lock()
	if _, was := l.unpersisted[epoch]; was {
		delete(l.unpersisted, epoch)
	}
	l.persisted++
	l.mu.Unlock()
}

func (l *durableLedger) markFailed(epoch uint32, reason string, queueFull bool) {
	l.mu.Lock()
	l.unpersisted[epoch] = reason
	l.lastErr = reason
	if queueFull {
		l.queueFull++
	}
	l.mu.Unlock()
}

// restore seeds the ledger from a checkpoint's v3 footer.
func (l *durableLedger) restore(persisted int, unpersisted []uint32, queueFull int) {
	l.mu.Lock()
	l.persisted = persisted
	l.queueFull = queueFull
	l.unpersisted = make(map[uint32]string, len(unpersisted))
	for _, e := range unpersisted {
		l.unpersisted[e] = "unpersisted at checkpoint"
	}
	l.mu.Unlock()
}

func (l *durableLedger) snapshot(enabled bool) Durability {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := Durability{
		Enabled:   enabled,
		Persisted: l.persisted,
		QueueFull: l.queueFull,
		LastError: l.lastErr,
	}
	for e := range l.unpersisted {
		d.Unpersisted = append(d.Unpersisted, e)
	}
	sort.Slice(d.Unpersisted, func(i, j int) bool { return d.Unpersisted[i] < d.Unpersisted[j] })
	return d
}

// persistJob carries one finalized epoch to the persister. A job with a
// non-nil ack and no records is a barrier: the persister closes ack once
// every earlier job has been resolved (tests and Finish use it to drain).
type persistJob struct {
	epoch uint32
	recs  []epochstore.Record
	ack   chan struct{}
}

// persister is the async persistence pipeline: one goroutine draining a
// bounded queue into the epoch store with retries.
type persister struct {
	store   *epochstore.Store
	jobs    chan persistJob
	done    chan struct{}
	retry   backoff.Policy
	ledger  *durableLedger
	stopped bool // guarded by the engine's single-goroutine discipline
}

func newPersister(store *epochstore.Store, queue int, retry backoff.Policy, ledger *durableLedger) *persister {
	if queue <= 0 {
		queue = 8
	}
	p := &persister{
		store:  store,
		jobs:   make(chan persistJob, queue),
		done:   make(chan struct{}),
		retry:  retry,
		ledger: ledger,
	}
	go p.run()
	return p
}

func (p *persister) run() {
	defer close(p.done)
	for job := range p.jobs {
		if job.recs == nil {
			if job.ack != nil {
				close(job.ack)
			}
			continue
		}
		err := p.retry.Retry(func() error { return p.store.AppendEpoch(job.recs) })
		if err != nil {
			p.ledger.markFailed(job.epoch, fmt.Sprintf("epoch %d: %v", job.epoch, err), false)
		} else {
			p.ledger.markPersisted(job.epoch)
		}
	}
}

// enqueue hands an epoch to the persister without ever blocking: a full
// queue marks the epoch unpersisted and moves on.
func (p *persister) enqueue(epoch uint32, recs []epochstore.Record) {
	if p.stopped {
		p.ledger.markFailed(epoch, fmt.Sprintf("epoch %d: persister stopped", epoch), false)
		return
	}
	select {
	case p.jobs <- persistJob{epoch: epoch, recs: recs}:
	default:
		p.ledger.markFailed(epoch, fmt.Sprintf("epoch %d: persist queue full", epoch), true)
	}
}

// barrier blocks until every job enqueued before it has been resolved.
// Unlike enqueue it waits for queue space: it is a drain, not a data path.
func (p *persister) barrier() {
	if p.stopped {
		return
	}
	ack := make(chan struct{})
	p.jobs <- persistJob{ack: ack}
	<-ack
}

// stop drains the queue and stops the goroutine. Idempotent.
func (p *persister) stop() {
	if p.stopped {
		return
	}
	p.stopped = true
	close(p.jobs)
	<-p.done
}

// persistEpoch captures the closed epoch's finalized results (HAVING
// applied — exactly what emitEpoch delivers) and hands them to the
// persister. Runs before emitEpoch so the rows are captured before a
// result handler's Drop releases them. Never blocks.
func (e *Engine) persistEpoch(closed Degradation) {
	if e.persist == nil {
		return
	}
	epoch := closed.Epoch
	recs := make([]epochstore.Record, 0, len(e.queries))
	for _, q := range e.queries {
		rows, err := e.Results(q, epoch)
		if err != nil {
			e.persist.ledger.markFailed(epoch, fmt.Sprintf("epoch %d: capture %v: %v", epoch, q, err), false)
			return
		}
		rec := epochstore.Record{
			Epoch: epoch, Rel: q,
			Offered: closed.Offered, Processed: closed.Processed,
			Dropped: closed.Dropped, Late: closed.Late,
			Rows: make([]epochstore.Row, len(rows)),
		}
		for i := range rows {
			rec.Rows[i] = epochstore.Row{Key: rows[i].Key, Aggs: rows[i].Aggs}
		}
		recs = append(recs, rec)
	}
	e.persist.enqueue(epoch, recs)
}

// SyncStore blocks until every epoch handed to the persister so far has
// been resolved (persisted or recorded as failed). It does not stop the
// persister. No-op without a store.
func (e *Engine) SyncStore() {
	if e.persist != nil {
		e.persist.barrier()
	}
}

// Durability returns the durable-store accounting. Without a store it
// reports Enabled=false (and whatever ledger state a v3 checkpoint
// restored).
func (e *Engine) Durability() Durability {
	return e.durable.snapshot(e.persist != nil)
}

// ReplayStore merges the attached store's persisted epochs back into the
// HFTA — the second half of a crash recovery: Restore rewinds the engine
// to the last checkpoint, ReplayStore re-hydrates every epoch the store
// kept, and the two together resume exactly (persisted epochs answer
// byte-identically to the original run). Records for (epoch, relation)
// pairs the engine already holds (checkpoint-retained rows) are skipped,
// so calling it after any Restore is safe. It also reconciles the
// durability ledger against the store's actual contents, which are
// authoritative over the checkpoint's footer.
func (e *Engine) ReplayStore() error {
	if e.persist == nil {
		return fmt.Errorf("core: no epoch store attached (Options.Store)")
	}
	st := e.persist.store
	err := st.Scan(func(rec *epochstore.Record) error {
		if _, known := e.specByRel[rec.Rel]; !known {
			return fmt.Errorf("core: store holds epoch %d of %v, not a workload query", rec.Epoch, rec.Rel)
		}
		if e.agg.GroupCount(rec.Rel, rec.Epoch) > 0 {
			return nil // already present (retained rows from the checkpoint)
		}
		for i := range rec.Rows {
			e.agg.Consume(lfta.Eviction{
				Rel: rec.Rel, Key: rec.Rows[i].Key, Aggs: rec.Rows[i].Aggs, Epoch: rec.Epoch,
			})
		}
		return nil
	})
	if err != nil {
		return err
	}
	e.reconcileStore()
	return nil
}

// reconcileStore rebuilds the durability ledger from the store's actual
// contents: a closed epoch counts as persisted iff every query relation's
// record is present.
func (e *Engine) reconcileStore() {
	st := e.persist.store
	l := e.persist.ledger
	l.mu.Lock()
	defer l.mu.Unlock()
	l.persisted = 0
	l.unpersisted = make(map[uint32]string)
	for _, d := range e.degHist {
		complete := true
		for _, q := range e.queries {
			if !st.Has(d.Epoch, q) {
				complete = false
				break
			}
		}
		if complete {
			l.persisted++
		} else {
			l.unpersisted[d.Epoch] = "missing from store after recovery"
		}
	}
}
