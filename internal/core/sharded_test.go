package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/stream"
)

// Equivalence and crash-recovery properties of the sharded engine: with
// shedding disabled, any shard count computes exactly the single engine's
// (and the oracle's) answers; with a seeded UniformShed, a killed run
// restored from a v2 checkpoint replays byte-identically.

// TestShardedEquivalence: with shedding disabled, the sharded engine at
// n ∈ {1,2,4,8} emits results identical to the single engine and to the
// reference oracle, and processes every record.
func TestShardedEquivalence(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	oracle := hfta.Reference(recs, chaosQueries, lfta.CountStar, 10)

	single, err := New(pairSQL, groups, Options{M: 8000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := single.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	want := single.AllResults()
	if !hfta.Equal(want, oracle) {
		t.Fatal("single engine differs from the oracle")
	}

	for _, n := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			e, err := New(pairSQL, groups, Options{M: 8000, Seed: 3, Shards: n})
			if err != nil {
				t.Fatal(err)
			}
			if got := e.NumShards(); got != n && !(n <= 1 && got == 1) {
				t.Fatalf("NumShards = %d; want %d", got, n)
			}
			if err := e.Run(stream.NewSliceSource(recs)); err != nil {
				t.Fatal(err)
			}
			if !hfta.Equal(e.AllResults(), want) {
				t.Error("sharded results differ from the single engine")
			}
			if !hfta.Equal(e.AllResults(), oracle) {
				t.Error("sharded results differ from the oracle")
			}
			d := e.Stats().Degradation
			if d.Processed != uint64(len(recs)) || d.Dropped != 0 || d.Late != 0 {
				t.Errorf("shedding-disabled run degraded: %+v", d)
			}
			if n > 1 {
				assertShardLedgers(t, e)
			}
		})
	}
}

// TestShardedAdaptiveEquivalence: adaptive re-planning swaps runtimes at
// epoch boundaries; the sharded engine must stay exact through the swaps.
func TestShardedAdaptiveEquivalence(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	oracle := hfta.Reference(recs, chaosQueries, lfta.CountStar, 10)
	e, err := New(pairSQL, groups, Options{
		M: 8000, Seed: 3, Shards: 4,
		Adapt: AdaptOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	if !hfta.Equal(e.AllResults(), oracle) {
		t.Error("adaptive sharded run differs from the oracle")
	}
}

// TestShardedKillRestoreV2 is the v2-checkpoint acceptance test: a
// sharded run shedding with a seeded, stateful UniformShed policy is
// killed mid-stream and restored from its v2 checkpoint; the union of the
// crashed and resumed runs' emissions must be byte-identical to the
// uninterrupted run — which requires the checkpoint to carry the policy's
// EWMA rate and RNG position plus the per-shard budget-split weights.
func TestShardedKillRestoreV2(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	for _, n := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			mkOpts := func() Options {
				return Options{
					M: 8000, Seed: 3, Shards: n,
					Budget: 600, Shed: NewUniformShed(0.5, 99),
				}
			}

			// Uninterrupted reference run.
			wantEmit := emissionMap{}
			ropts := mkOpts()
			ropts.OnResults = collectEmissions(t, wantEmit)
			ref, err := New(pairSQL, groups, ropts)
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Run(stream.NewSliceSource(recs)); err != nil {
				t.Fatal(err)
			}
			if ref.Stats().Degradation.Dropped == 0 {
				t.Fatal("budget never forced shedding; the test is vacuous")
			}

			// Crashed run: checkpoint at every boundary, die mid-epoch.
			ckpt := filepath.Join(t.TempDir(), "sharded.ckpt")
			copts := mkOpts()
			copts.CheckpointPath = ckpt
			crashEmit := emissionMap{}
			copts.OnResults = collectEmissions(t, crashEmit)
			e1, err := New(pairSQL, groups, copts)
			if err != nil {
				t.Fatal(err)
			}
			const crashAt = 17000
			for i := 0; i < crashAt; i++ {
				if err := e1.Process(recs[i]); err != nil {
					t.Fatal(err)
				}
			}
			// No Finish: the process is gone.

			// Resumed run from the v2 checkpoint.
			resumeEmit := emissionMap{}
			popts := mkOpts()
			popts.OnResults = collectEmissions(t, resumeEmit)
			e2, err := New(pairSQL, groups, popts)
			if err != nil {
				t.Fatal(err)
			}
			consumed, err := e2.RestoreCheckpointFile(ckpt)
			if err != nil {
				t.Fatal(err)
			}
			if consumed == 0 || consumed > crashAt {
				t.Fatalf("restored position %d out of range (0, %d]", consumed, crashAt)
			}
			if err := e2.Run(stream.NewSkipSource(stream.NewSliceSource(recs), consumed)); err != nil {
				t.Fatal(err)
			}

			got := emissionMap{}
			for k, v := range crashEmit {
				got[k] = v
			}
			for k, v := range resumeEmit {
				if prev, dup := got[k]; dup && prev != v {
					t.Errorf("epoch %d of %v emitted differently by crashed and resumed runs", k.epoch, k.rel)
				}
				got[k] = v
			}
			if len(got) != len(wantEmit) {
				t.Fatalf("crash+resume emitted %d (query, epoch) results; uninterrupted run emitted %d",
					len(got), len(wantEmit))
			}
			for k, want := range wantEmit {
				if got[k] != want {
					t.Errorf("epoch %d of %v differs from the uninterrupted run", k.epoch, k.rel)
				}
			}

			// The resumed ledgers — global and per-shard — cover the whole
			// stream and agree with the uninterrupted run exactly.
			assertLedger(t, e2, uint64(len(recs)))
			dRef, dGot := ref.Stats().Degradation, e2.Stats().Degradation
			if dRef != dGot {
				t.Errorf("resumed cumulative ledger %+v; uninterrupted %+v", dGot, dRef)
			}
			if n > 1 {
				assertShardLedgers(t, e2)
				refShards, gotShards := ref.ShardDegradations(), e2.ShardDegradations()
				for i := range refShards {
					if refShards[i] != gotShards[i] {
						t.Errorf("shard %d resumed ledger %+v; uninterrupted %+v", i, gotShards[i], refShards[i])
					}
				}
				refPos, gotPos := ref.ShardPositions(), e2.ShardPositions()
				for i := range refPos {
					if refPos[i] != gotPos[i] {
						t.Errorf("shard %d resumed position %d; uninterrupted %d", i, gotPos[i], refPos[i])
					}
				}
			}
		})
	}
}

// TestCheckpointV1ReadCompat: a version-1 image (the pre-v2 format) still
// restores — into an unsharded engine and into a sharded one — with the
// v2-only state simply starting fresh.
func TestCheckpointV1ReadCompat(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	opts := Options{M: 8000, Seed: 3}

	// Write the v1 image at a real epoch boundary, replicating the
	// sequence the engine's own CheckpointPath write runs inside Process:
	// roll the clock, close the epoch (flushing the LFTA), write, then
	// feed the rolling record — which the checkpoint does not count, so
	// the restore replays it.
	var v1 bytes.Buffer
	e1, err := New(pairSQL, groups, opts)
	if err != nil {
		t.Fatal(err)
	}
	const crashAt = 17000
	for i := 0; i < crashAt; i++ {
		rec := recs[i]
		if e1.specs[0].MatchWhere(rec.Attrs) && e1.clock.Started() &&
			rec.Time/e1.epochLen > e1.clock.Current() {
			if _, rolled, _ := e1.clock.Observe(rec.Time); rolled {
				if err := e1.endEpoch(); err != nil {
					t.Fatal(err)
				}
				v1.Reset()
				if err := e1.checkpointVersion(&v1, ckptVersionV1); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := e1.Process(rec); err != nil {
			t.Fatal(err)
		}
	}
	if v1.Len() == 0 {
		t.Fatal("no epoch boundary crossed before the crash point")
	}
	if v1.Bytes()[4] != ckptVersionV1 {
		t.Fatalf("v1 writer stamped version %d", v1.Bytes()[4])
	}

	// Uninterrupted reference.
	ref, err := New(pairSQL, groups, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	want := ref.AllResults()

	t.Run("unsharded", func(t *testing.T) {
		e2, err := New(pairSQL, groups, opts)
		if err != nil {
			t.Fatal(err)
		}
		consumed, err := e2.Restore(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if err := e2.Run(stream.NewSkipSource(stream.NewSliceSource(recs), consumed)); err != nil {
			t.Fatal(err)
		}
		if !hfta.Equal(e2.AllResults(), want) {
			t.Error("v1 restore differs from the uninterrupted run")
		}
	})

	t.Run("into sharded engine", func(t *testing.T) {
		// Read-compat extends to a sharded deployment: a v1 image has no
		// per-shard state, so the shard ledgers start fresh, but results
		// stay exact.
		sopts := opts
		sopts.Shards = 4
		e2, err := New(pairSQL, groups, sopts)
		if err != nil {
			t.Fatal(err)
		}
		consumed, err := e2.Restore(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if err := e2.Run(stream.NewSkipSource(stream.NewSliceSource(recs), consumed)); err != nil {
			t.Fatal(err)
		}
		if !hfta.Equal(e2.AllResults(), want) {
			t.Error("v1 restore into a sharded engine differs from the uninterrupted run")
		}
	})
}

// TestCheckpointShardCountMismatch: a v2 image written by an n-shard
// engine must not restore into a deployment with a different shard count
// — the per-shard state would be meaningless.
func TestCheckpointShardCountMismatch(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	opts := Options{M: 8000, Seed: 3, Shards: 4}
	e1, err := New(pairSQL, groups, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 17000; i++ {
		if err := e1.Process(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e1.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 2} {
		o := Options{M: 8000, Seed: 3, Shards: n}
		e2, err := New(pairSQL, groups, o)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e2.Restore(bytes.NewReader(buf.Bytes())); err == nil {
			t.Errorf("4-shard checkpoint restored into %d-shard engine", n)
		}
	}
}
