package core

import (
	"repro/internal/attr"
	"repro/internal/hfta"
	"repro/internal/sketch"
)

// Sliding-window wiring: every closed LFTA epoch becomes a pane, and the
// hfta.Composer folds panes into overlapping windows. The engine's part
// is deliberately thin — at each epoch close it hands the composer the
// epoch's finalized HFTA rows plus the pane's serialized sketch partials,
// then delivers whatever windows the composer says are complete. Sketch
// accumulation runs in the single-threaded admission path (Process),
// never inside the sharded probe pipeline, so the SIMD probe hot path is
// byte-identical with and without windowing and windowed results match
// across shard counts.

// WindowHandler streams closed windows out of the engine: one call per
// query relation per closed window, rows sorted by group key, HAVING
// applied to the composed exact aggregates. rows — including each row's
// Key, Aggs, and Sketch slices — is only valid during the call: once
// every relation of a window has been delivered the storage is recycled
// into the composer, so a handler that retains results must deep-copy.
type WindowHandler func(rel attr.Set, led hfta.WindowLedger, rows []hfta.WindowRow)

// initWindowing builds the pane→window composer when the workload
// declares a window clause or sketch aggregates. A sketch-only workload
// (no window clause) runs as size-1 tumbling windows: each epoch closes
// its own window, which is exactly per-epoch sketch read-out.
func (e *Engine) initWindowing() error {
	s0 := e.specs[0]
	if !s0.Windowed() && len(s0.Sketches) == 0 {
		return nil
	}
	win := hfta.WindowSpec{Size: s0.WindowSize, Slide: s0.WindowSlide}
	if !s0.Windowed() {
		win = hfta.WindowSpec{Size: 1, Slide: 1}
	}
	e.sketchAggs = s0.SketchSpecs()
	comp, err := hfta.NewComposer(win, e.queries, e.aggs, e.sketchAggs,
		e.opts.WindowSketchPrecision, e.opts.DigestCompression)
	if err != nil {
		return err
	}
	e.winComposer = comp
	if len(e.sketchAggs) > 0 {
		e.paneSk = make(map[attr.Set]map[string]*sketch.Partial, len(e.queries))
		for _, q := range e.queries {
			e.paneSk[q] = make(map[string]*sketch.Partial)
		}
	}
	return nil
}

// Windowed reports whether the engine composes sliding windows (true for
// any workload with a window clause or sketch aggregates).
func (e *Engine) Windowed() bool { return e.winComposer != nil }

// sketchPrecision returns the resolved HLL precision (options value or
// the sketch package default), so an explicit default and a zero option
// configure — and checkpoint — identically.
func (e *Engine) sketchPrecision() uint8 {
	if e.opts.WindowSketchPrecision != 0 {
		return e.opts.WindowSketchPrecision
	}
	return sketch.DefaultPrecision
}

// digestCompression returns the resolved t-digest compression.
func (e *Engine) digestCompression() float64 {
	if e.opts.DigestCompression != 0 {
		return e.opts.DigestCompression
	}
	return sketch.DefaultCompression
}

// observePaneSketches feeds one admitted record into the open pane's
// per-group sketch partials, for every query relation. Runs on the
// admission path before sharding, so partials are deterministic in the
// stream order regardless of deployment shape. Alloc-free on the hot
// path: the packed-key lookup uses the compiler's map[string] byte-slice
// optimization and only a first-seen group allocates.
func (e *Engine) observePaneSketches(attrs []uint32) {
	for _, q := range e.queries {
		e.paneKeyBuf = q.Project(attrs, e.paneKeyBuf[:0])
		e.paneKeyBytes = hfta.AppendKeyBytes(e.paneKeyBytes[:0], e.paneKeyBuf)
		m := e.paneSk[q]
		p := m[string(e.paneKeyBytes)]
		if p == nil {
			var err error
			p, err = sketch.NewPartial(e.sketchAggs, e.opts.WindowSketchPrecision, e.opts.DigestCompression)
			if err != nil {
				// Spec list was validated at construction; unreachable.
				continue
			}
			m[string(e.paneKeyBytes)] = p
		}
		p.Observe(attrs)
	}
}

// feedPane hands the closing epoch to the composer as a pane — the
// epoch's finalized HFTA rows plus the serialized sketch partials — and
// delivers every window the pane completes. Runs after persistEpoch
// (the durable copy is captured first) and before emitEpoch (which drops
// the epoch's HFTA state).
func (e *Engine) feedPane(closed Degradation) {
	inputs := make([]hfta.PaneInput, 0, len(e.queries))
	for _, q := range e.queries {
		in := hfta.PaneInput{Rel: q, Rows: e.agg.Rows(q, closed.Epoch)}
		if m := e.paneSk[q]; len(m) > 0 {
			in.Sketches = make(map[string][]byte, len(m))
			for k, p := range m {
				in.Sketches[k] = p.AppendBinary(nil)
			}
			e.paneSk[q] = make(map[string]*sketch.Partial)
		}
		inputs = append(inputs, in)
	}
	e.winComposer.ClosePane(closed.Epoch, hfta.PaneStats{
		Offered:   closed.Offered,
		Processed: closed.Processed,
		Dropped:   closed.Dropped,
		Late:      closed.Late,
	}, inputs)
	// Every epoch before the clock's current one is final (the clock is
	// monotone and late records are dropped), so any window ending there
	// can close now.
	if _, cur, _ := e.clock.Snapshot(); cur > closed.Epoch {
		e.deliverWindows(e.winComposer.CloseThrough(int64(cur) - 1))
	}
}

// deliverWindows applies HAVING to the composed rows and either streams
// each window through Options.OnWindow or retains it for
// WindowResults/WindowLedgers. On the handler path each result's
// storage is recycled into the composer once every query's rows have
// been delivered (the WindowHandler contract makes rows transient); the
// retention path keeps the rows and must not recycle.
func (e *Engine) deliverWindows(results []hfta.WindowResult) {
	for _, res := range results {
		e.stats.Windows++
		e.windowLeds = append(e.windowLeds, res.Ledger)
		for _, q := range e.queries {
			spec := e.specByRel[q]
			rows := e.winRowScratch[:0]
			for _, r := range res.Rows {
				if r.Rel != q {
					continue
				}
				if spec != nil && !spec.MatchHaving(r.Aggs) {
					continue
				}
				rows = append(rows, r)
			}
			e.winRowScratch = rows
			if e.opts.OnWindow != nil {
				e.opts.OnWindow(q, res.Ledger, rows)
			} else {
				e.windowRows = append(e.windowRows, rows...)
			}
		}
		if e.opts.OnWindow != nil {
			e.winComposer.Recycle(res)
		}
	}
}

// WindowResults returns every closed window's rows (HAVING applied),
// ordered by window close then query then group key. Empty when an
// OnWindow handler streams them instead.
func (e *Engine) WindowResults() []hfta.WindowRow { return e.windowRows }

// WindowLedgers returns the ledger of every closed window in close
// order. Each ledger satisfies Offered == Processed + Dropped + Late
// summed over the window's panes.
func (e *Engine) WindowLedgers() []hfta.WindowLedger { return e.windowLeds }
