package core

import (
	"math"
	"testing"

	"repro/internal/attr"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/stream"
)

// TestEngineAllAggregates runs count/sum/min/max/avg through the full
// pipeline and validates against a direct computation, including the avg
// division via OutputRow.
func TestEngineAllAggregates(t *testing.T) {
	recs, _ := testWorkload(t, 20000)
	sqls := []string{
		"select A, count(*) as cnt, sum(B) as total, min(B) as lo, max(B) as hi, avg(B) as mean from R group by A, time/10",
		"select C, count(*) as cnt, sum(B) as total, min(B) as lo, max(B) as hi, avg(B) as mean from R group by C, time/10",
	}
	qs := []attr.Set{attr.MustParseSet("A"), attr.MustParseSet("C")}
	groups, err := EstimateGroups(recs, qs)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sqls, groups, Options{M: 10000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	// Reference with the same physical slots the engine planned (avg is
	// the sum slot at index 4; count at 0 doubles as its denominator).
	specs := e.specs
	aggs := specs[0].AggSpecs()
	want := hfta.Reference(recs, qs, aggs, 10)
	if !hfta.Equal(e.AllResults(), want) {
		t.Fatal("results differ from reference")
	}
	// Check the derived average on a few rows.
	relA := attr.MustParseSet("A")
	spec := e.specByRel[relA]
	rows, err := e.Results(relA, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows[:min(5, len(rows))] {
		out := spec.OutputRow(r.Aggs)
		cols := spec.OutputColumns()
		if len(out) != len(cols) || len(cols) != 5 {
			t.Fatalf("output shape %d vs columns %v", len(out), cols)
		}
		cnt, total, lo, hi, mean := out[0], out[1], out[2], out[3], out[4]
		if cnt <= 0 || lo > hi {
			t.Errorf("row %v: implausible aggregates %v", r.Key, out)
		}
		if math.Abs(mean-total/cnt) > 1e-9 {
			t.Errorf("row %v: avg %v != sum/count %v", r.Key, mean, total/cnt)
		}
		if mean < lo-1e-9 || mean > hi+1e-9 {
			t.Errorf("row %v: avg %v outside [min %v, max %v]", r.Key, mean, lo, hi)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestEngineWithOrderedSource: a slightly out-of-order stream, fixed by
// the reorder window, still yields exact results over the reordered
// records.
func TestEngineWithOrderedSource(t *testing.T) {
	recs, _ := testWorkload(t, 20000)
	// Shuffle timestamps slightly: swap adjacent pairs.
	perturbed := append([]stream.Record(nil), recs...)
	for i := 0; i+1 < len(perturbed); i += 2 {
		perturbed[i], perturbed[i+1] = perturbed[i+1], perturbed[i]
	}
	qs := []attr.Set{attr.MustParseSet("AB"), attr.MustParseSet("CD")}
	sqls := []string{
		"select A, B, count(*) as cnt from R group by A, B, time/10",
		"select C, D, count(*) as cnt from R group by C, D, time/10",
	}
	groups, err := EstimateGroups(recs, qs)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(sqls, groups, Options{M: 8000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ordered := stream.NewOrderedSource(stream.NewSliceSource(perturbed), 3)
	if err := e.Run(ordered); err != nil {
		t.Fatal(err)
	}
	if ordered.Late() != 0 {
		t.Fatalf("%d records dropped despite sufficient slack", ordered.Late())
	}
	want := hfta.Reference(recs, qs, lfta.CountStar, 10)
	if !hfta.Equal(e.AllResults(), want) {
		t.Error("results over reordered stream differ from reference")
	}
}
