package core

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/backoff"
	"repro/internal/epochstore"
	"repro/internal/hfta"
	"repro/internal/stream"
)

// The durability suite: epochs persisted through the async pipeline must
// match the emitted answers byte for byte, a dead or slow store must
// degrade to the unpersisted ledger without ever touching ingest, and
// checkpoint + store replay must resume a killed run exactly.

// noSleep retries instantly so fault-heavy tests don't serve real backoff.
func noSleep() backoff.Policy {
	return backoff.Policy{Sleep: func(time.Duration) {}}
}

// renderStored serializes a store record exactly like renderRows does an
// emission, so the two can be compared byte for byte.
func renderStored(rec *epochstore.Record) string {
	rows := make([]hfta.Row, len(rec.Rows))
	for i, r := range rec.Rows {
		rows[i] = hfta.Row{Rel: rec.Rel, Epoch: rec.Epoch, Key: r.Key, Aggs: r.Aggs}
	}
	return renderRows(rows)
}

func openStore(t *testing.T, dir string, opts epochstore.Options) *epochstore.Store {
	t.Helper()
	s, err := epochstore.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPersistedEpochsMatchEmissions: with a healthy store attached, every
// closed epoch's persisted records carry exactly the rows the engine
// emitted (same HAVING-applied answers) and the closed epoch's overload
// ledger — and they survive a store restart.
func TestPersistedEpochsMatchEmissions(t *testing.T) {
	recs, groups := testWorkload(t, 20000)
	dir := filepath.Join(t.TempDir(), "store")
	st := openStore(t, dir, epochstore.Options{})
	emit := emissionMap{}
	e, err := New(pairSQL, groups, Options{
		M: 8000, Seed: 3, Store: st, OnResults: collectEmissions(t, emit),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}

	degs := e.EpochDegradations()
	if len(degs) < 2 {
		t.Fatalf("workload closed only %d epochs", len(degs))
	}
	d := e.Durability()
	if !d.Enabled {
		t.Error("Durability.Enabled = false with a store attached")
	}
	if len(d.Unpersisted) != 0 || d.QueueFull != 0 || d.LastError != "" {
		t.Errorf("healthy store degraded: %+v", d)
	}
	if d.Persisted != len(degs) {
		t.Errorf("persisted %d epochs; closed %d", d.Persisted, len(degs))
	}

	check := func(t *testing.T, s *epochstore.Store) {
		t.Helper()
		if s.Len() != len(degs)*len(chaosQueries) {
			t.Fatalf("store holds %d records; want %d", s.Len(), len(degs)*len(chaosQueries))
		}
		for _, deg := range degs {
			for _, q := range chaosQueries {
				rec, err := s.Read(deg.Epoch, q)
				if err != nil {
					t.Fatalf("epoch %d of %v: %v", deg.Epoch, q, err)
				}
				if got, want := renderStored(rec), emit[epochKey{q, deg.Epoch}]; got != want {
					t.Errorf("epoch %d of %v: stored rows differ from the emission", deg.Epoch, q)
				}
				if rec.Offered != deg.Offered || rec.Processed != deg.Processed ||
					rec.Dropped != deg.Dropped || rec.Late != deg.Late {
					t.Errorf("epoch %d of %v: stored ledger %+v; closed epoch %+v", deg.Epoch, q, rec, deg)
				}
			}
		}
	}
	check(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the records must still be there, bit for bit.
	re := openStore(t, dir, epochstore.Options{})
	defer re.Close()
	if re.Recovery().Dirty() {
		t.Errorf("clean shutdown needed repair: %+v", re.Recovery())
	}
	check(t, re)
}

// TestStoreDownDegradesGracefully: a store that fails every operation
// must not disturb ingest or answers — every epoch lands in the
// unpersisted ledger and the run is otherwise identical to a storeless
// one.
func TestStoreDownDegradesGracefully(t *testing.T) {
	recs, groups := testWorkload(t, 20000)

	// Reference emissions without any store.
	want := emissionMap{}
	ref, err := New(pairSQL, groups, Options{M: 8000, Seed: 3, OnResults: collectEmissions(t, want)})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}

	// The store opens fine, then the disk dies before the first epoch.
	ffs := epochstore.NewFaultFS(nil, epochstore.Faults{})
	st := openStore(t, filepath.Join(t.TempDir(), "store"), epochstore.Options{FS: ffs})
	defer st.Close()
	ffs.CrashNow()

	emit := emissionMap{}
	e, err := New(pairSQL, groups, Options{
		M: 8000, Seed: 3, Store: st,
		StoreBackoff: noSleep(),
		OnResults:    collectEmissions(t, emit),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatalf("ingest failed because the store is down: %v", err)
	}
	assertLedger(t, e, uint64(len(recs)))

	if len(emit) != len(want) {
		t.Fatalf("emitted %d results with a dead store; storeless run emitted %d", len(emit), len(want))
	}
	for k, w := range want {
		if emit[k] != w {
			t.Errorf("epoch %d of %v: answers differ with a dead store", k.epoch, k.rel)
		}
	}

	d := e.Durability()
	degs := e.EpochDegradations()
	if d.Persisted != 0 {
		t.Errorf("persisted %d epochs on a dead store", d.Persisted)
	}
	if len(d.Unpersisted) != len(degs) {
		t.Errorf("unpersisted ledger lists %d epochs; %d closed", len(d.Unpersisted), len(degs))
	}
	if d.LastError == "" {
		t.Error("no LastError after every append failed")
	}
	for _, deg := range degs {
		if !d.EpochUnpersisted(deg.Epoch) {
			t.Errorf("epoch %d missing from the unpersisted ledger", deg.Epoch)
		}
	}
}

// TestPersistQueueFullDegrades: when the store is too slow and the
// bounded queue fills, epochs degrade to unpersisted (counted as
// QueueFull) instead of blocking ingest.
func TestPersistQueueFullDegrades(t *testing.T) {
	recs, groups := testWorkload(t, 20000)

	// Opening the store performs exactly two writes (segment header,
	// manifest); pre-feed those, then every later write blocks on the gate
	// until it is closed.
	gate := make(chan struct{}, 2)
	gate <- struct{}{}
	gate <- struct{}{}
	ffs := epochstore.NewFaultFS(nil, epochstore.Faults{BlockWrites: gate})
	st := openStore(t, filepath.Join(t.TempDir(), "store"), epochstore.Options{FS: ffs})
	defer st.Close()

	e, err := New(pairSQL, groups, Options{
		M: 8000, Seed: 3, Store: st, StoreQueue: 1, StoreBackoff: noSleep(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := e.Process(r); err != nil {
			t.Fatalf("ingest blocked on a stalled store: %v", err)
		}
	}
	close(gate) // disk recovers; let Finish drain what queued
	if err := e.Finish(); err != nil {
		t.Fatal(err)
	}

	d := e.Durability()
	degs := e.EpochDegradations()
	if d.QueueFull == 0 {
		t.Fatal("stalled store never overflowed the size-1 queue")
	}
	if d.Persisted == 0 {
		t.Error("no epoch persisted even after the store recovered")
	}
	if d.Persisted+len(d.Unpersisted) != len(degs) {
		t.Errorf("persisted %d + unpersisted %d != %d closed epochs",
			d.Persisted, len(d.Unpersisted), len(degs))
	}
}

// TestKillRestoreWithStoreReplay is the acceptance crash test for the
// durable pipeline: kill the engine mid-epoch, reopen the store, restore
// the checkpoint, replay the store — the resumed engine answers every
// pre-crash epoch byte-identically, and the union of emissions matches an
// uninterrupted run exactly.
func TestKillRestoreWithStoreReplay(t *testing.T) {
	recs, groups := testWorkload(t, 30000)
	opts := Options{M: 8000, Seed: 3}

	// Uninterrupted reference run (storeless).
	wantEmit := emissionMap{}
	ropts := opts
	ropts.OnResults = collectEmissions(t, wantEmit)
	ref, err := New(pairSQL, groups, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}

	// Crashed run: store + checkpoint at every boundary, die mid-epoch.
	base := t.TempDir()
	dir := filepath.Join(base, "store")
	ckpt := filepath.Join(base, "kill.ckpt")
	st1 := openStore(t, dir, epochstore.Options{})
	copts := opts
	copts.Store = st1
	copts.CheckpointPath = ckpt
	crashEmit := emissionMap{}
	copts.OnResults = collectEmissions(t, crashEmit)
	e1, err := New(pairSQL, groups, copts)
	if err != nil {
		t.Fatal(err)
	}
	const crashAt = 17000
	for i := 0; i < crashAt; i++ {
		if err := e1.Process(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// No Finish: the process is gone. Quiesce the persister's in-flight
	// writes and drop the handle, as a killed process's page cache would
	// have been flushed by the store's per-epoch fsync anyway. Torn-write
	// crashes inside the store are the epochstore crash suite's job.
	e1.SyncStore()
	st1.Close()

	// Resumed run: reopen the store, restore the checkpoint, replay.
	st2 := openStore(t, dir, epochstore.Options{})
	resumeEmit := emissionMap{}
	popts := opts
	popts.Store = st2
	popts.OnResults = collectEmissions(t, resumeEmit)
	e2, err := New(pairSQL, groups, popts)
	if err != nil {
		t.Fatal(err)
	}
	consumed, err := e2.RestoreCheckpointFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if consumed == 0 || consumed > crashAt {
		t.Fatalf("restored position %d out of range (0, %d]", consumed, crashAt)
	}
	if err := e2.ReplayStore(); err != nil {
		t.Fatal(err)
	}

	// Historical query path: every epoch the crashed run emitted must be
	// answerable from the replayed store, byte-identically.
	for k, want := range crashEmit {
		rows, err := e2.Results(k.rel, k.epoch)
		if err != nil {
			t.Fatalf("replayed epoch %d of %v unreadable: %v", k.epoch, k.rel, err)
		}
		if renderRows(rows) != want {
			t.Errorf("replayed epoch %d of %v differs from the crashed run's emission", k.epoch, k.rel)
		}
	}

	if err := e2.Run(stream.NewSkipSource(stream.NewSliceSource(recs), consumed)); err != nil {
		t.Fatal(err)
	}
	assertLedger(t, e2, uint64(len(recs)))

	// Merged emissions must equal the uninterrupted run's exactly.
	got := emissionMap{}
	for k, v := range crashEmit {
		got[k] = v
	}
	for k, v := range resumeEmit {
		if prev, dup := got[k]; dup && prev != v {
			t.Errorf("epoch %d of %v emitted differently by crashed and resumed runs", k.epoch, k.rel)
		}
		got[k] = v
	}
	if len(got) != len(wantEmit) {
		t.Fatalf("crash+resume emitted %d (query, epoch) results; uninterrupted run emitted %d",
			len(got), len(wantEmit))
	}
	for k, want := range wantEmit {
		if got[k] != want {
			t.Errorf("epoch %d of %v differs from the uninterrupted run", k.epoch, k.rel)
		}
	}

	// After the resumed run drains, the store holds every closed epoch.
	if d := e2.Durability(); len(d.Unpersisted) != 0 {
		t.Errorf("epochs still unpersisted after recovery: %v", d.Unpersisted)
	}
	st2.Close()
	final := openStore(t, dir, epochstore.Options{})
	defer final.Close()
	for k, want := range wantEmit {
		rec, err := final.Read(k.epoch, k.rel)
		if err != nil {
			t.Fatalf("epoch %d of %v missing from the final store: %v", k.epoch, k.rel, err)
		}
		if renderStored(rec) != want {
			t.Errorf("epoch %d of %v: final store differs from the uninterrupted run", k.epoch, k.rel)
		}
	}
}

// TestReplayMatchesCheckpointRetainedRows is the direct equivalence
// property: restoring a checkpoint that retained its result rows must
// yield the same per-epoch answers as restoring a row-less checkpoint and
// replaying the store.
func TestReplayMatchesCheckpointRetainedRows(t *testing.T) {
	recs, groups := testWorkload(t, 20000)
	base := t.TempDir()
	opts := Options{M: 8000, Seed: 3}

	// Run A: no result handler, so its checkpoints retain every row.
	ckA := filepath.Join(base, "a.ckpt")
	aopts := opts
	aopts.CheckpointPath = ckA
	eA, err := New(pairSQL, groups, aopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eA.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}

	// Run B: emits (and drops) rows, persisting them to the store instead.
	ckB := filepath.Join(base, "b.ckpt")
	dirB := filepath.Join(base, "store")
	stB := openStore(t, dirB, epochstore.Options{})
	bopts := opts
	bopts.CheckpointPath = ckB
	bopts.Store = stB
	bopts.OnResults = func(attr.Set, uint32, []hfta.Row, Degradation) {}
	eB, err := New(pairSQL, groups, bopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eB.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	stB.Close()

	// Restore path 1: rows from the checkpoint.
	e1, err := New(pairSQL, groups, opts)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := e1.RestoreCheckpointFile(ckA)
	if err != nil {
		t.Fatal(err)
	}

	// Restore path 2: row-less checkpoint plus store replay.
	st2 := openStore(t, dirB, epochstore.Options{})
	defer st2.Close()
	popts := opts
	popts.Store = st2
	e2, err := New(pairSQL, groups, popts)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e2.RestoreCheckpointFile(ckB)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("checkpoint positions diverge: %d vs %d", c1, c2)
	}
	if err := e2.ReplayStore(); err != nil {
		t.Fatal(err)
	}

	degs := e1.EpochDegradations()
	if len(degs) < 2 {
		t.Fatalf("checkpoint covers only %d closed epochs", len(degs))
	}
	for _, deg := range degs {
		for _, q := range chaosQueries {
			r1, err := e1.Results(q, deg.Epoch)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := e2.Results(q, deg.Epoch)
			if err != nil {
				t.Fatal(err)
			}
			if renderRows(r1) != renderRows(r2) {
				t.Errorf("epoch %d of %v: checkpoint rows and store replay disagree", deg.Epoch, q)
			}
		}
	}
}

// TestEngineCrashPointsDuringPersist sweeps simulated power cuts across
// the persistence pipeline's entire write history: wherever the disk
// dies, ingest and answers are untouched, the ledger accounts for every
// closed epoch, and whatever the store retains is byte-identical to the
// reference emissions.
func TestEngineCrashPointsDuringPersist(t *testing.T) {
	const cuts = 25
	recs, groups := testWorkload(t, 12000)
	base := t.TempDir()

	// Reference emissions (storeless) and total store bytes (fault-free).
	want := emissionMap{}
	ref, err := New(pairSQL, groups, Options{M: 8000, Seed: 3, OnResults: collectEmissions(t, want)})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	ffs0 := epochstore.NewFaultFS(nil, epochstore.Faults{})
	st0 := openStore(t, filepath.Join(base, "ref"), epochstore.Options{FS: ffs0})
	e0, err := New(pairSQL, groups, Options{
		M: 8000, Seed: 3, Store: st0,
		OnResults: func(attr.Set, uint32, []hfta.Row, Degradation) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e0.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	total := ffs0.Written()
	st0.Close()
	if total < cuts {
		t.Fatalf("reference run wrote only %d bytes", total)
	}

	for i := 1; i <= cuts; i++ {
		cut := total * int64(i) / cuts
		dir := filepath.Join(base, fmt.Sprintf("cut-%02d", i))
		ffs := epochstore.NewFaultFS(nil, epochstore.Faults{CrashAfterBytes: cut})
		st, err := epochstore.Open(dir, epochstore.Options{FS: ffs})
		if err != nil {
			if !errors.Is(err, epochstore.ErrCrashed) {
				t.Fatalf("cut %d: open failed with a non-crash error: %v", cut, err)
			}
			continue // disk died during store open; nothing to attach
		}
		emit := emissionMap{}
		e, err := New(pairSQL, groups, Options{
			M: 8000, Seed: 3, Store: st,
			StoreBackoff: noSleep(),
			OnResults:    collectEmissions(t, emit),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(stream.NewSliceSource(recs)); err != nil {
			t.Fatalf("cut %d: ingest failed because the disk died: %v", cut, err)
		}
		assertLedger(t, e, uint64(len(recs)))
		for k, w := range want {
			if emit[k] != w {
				t.Errorf("cut %d: epoch %d of %v answered differently under a disk crash", cut, k.epoch, k.rel)
			}
		}
		d := e.Durability()
		degs := e.EpochDegradations()
		if d.Persisted+len(d.Unpersisted) != len(degs) {
			t.Errorf("cut %d: persisted %d + unpersisted %d != %d closed epochs",
				cut, d.Persisted, len(d.Unpersisted), len(degs))
		}
		st.Close()

		// Restart on a healthy disk: the retained records are a
		// duplicate-free subset, byte-identical to the reference run, and
		// every epoch the ledger calls persisted is fully present.
		r := openStore(t, dir, epochstore.Options{})
		err = r.Scan(func(rec *epochstore.Record) error {
			w, known := want[epochKey{rec.Rel, rec.Epoch}]
			if !known {
				return fmt.Errorf("store retains epoch %d of %v, never emitted", rec.Epoch, rec.Rel)
			}
			if renderStored(rec) != w {
				return fmt.Errorf("epoch %d of %v differs from the reference emission", rec.Epoch, rec.Rel)
			}
			if rec.Offered != rec.Processed+rec.Dropped+rec.Late {
				return fmt.Errorf("epoch %d of %v: ledger identity broken", rec.Epoch, rec.Rel)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for _, deg := range degs {
			if d.EpochUnpersisted(deg.Epoch) {
				continue
			}
			for _, q := range chaosQueries {
				if !r.Has(deg.Epoch, q) {
					t.Errorf("cut %d: epoch %d of %v marked persisted but missing after restart", cut, deg.Epoch, q)
				}
			}
		}
		r.Close()
	}
}

// TestEmitEpochRetries: transient Results failures inside epoch emission
// are retried with backoff and never surface; a permanent failure burns
// the whole retry budget, then degrades to the ResultErrors counter.
func TestEmitEpochRetries(t *testing.T) {
	recs, groups := testWorkload(t, 8000)

	want := emissionMap{}
	ref, err := New(pairSQL, groups, Options{M: 8000, Seed: 3, OnResults: collectEmissions(t, want)})
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(stream.NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}

	t.Run("transient", func(t *testing.T) {
		emit := emissionMap{}
		e, err := New(pairSQL, groups, Options{M: 8000, Seed: 3, OnResults: collectEmissions(t, emit)})
		if err != nil {
			t.Fatal(err)
		}
		sleeps := 0
		e.emitRetry = backoff.Policy{Attempts: 4, Sleep: func(time.Duration) { sleeps++ }}
		real := e.emitResults
		calls := map[epochKey]int{}
		e.emitResults = func(rel attr.Set, epoch uint32) ([]hfta.Row, error) {
			k := epochKey{rel, epoch}
			calls[k]++
			if calls[k] <= 2 {
				return nil, fmt.Errorf("transient result failure %d", calls[k])
			}
			return real(rel, epoch)
		}
		if err := e.Run(stream.NewSliceSource(recs)); err != nil {
			t.Fatalf("transient failures surfaced from Run: %v", err)
		}
		if n := e.Stats().ResultErrors; n != 0 {
			t.Errorf("ResultErrors = %d after recovered retries; want 0", n)
		}
		if sleeps == 0 {
			t.Error("retries never backed off")
		}
		if len(emit) != len(want) {
			t.Fatalf("emitted %d results; want %d", len(emit), len(want))
		}
		for k, w := range want {
			if emit[k] != w {
				t.Errorf("epoch %d of %v differs after retried emission", k.epoch, k.rel)
			}
		}
	})

	t.Run("permanent", func(t *testing.T) {
		emitted := 0
		e, err := New(pairSQL, groups, Options{
			M: 8000, Seed: 3,
			OnResults: func(attr.Set, uint32, []hfta.Row, Degradation) { emitted++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		e.emitRetry = backoff.Policy{Attempts: 3, Sleep: func(time.Duration) {}}
		calls := map[epochKey]int{}
		e.emitResults = func(rel attr.Set, epoch uint32) ([]hfta.Row, error) {
			calls[epochKey{rel, epoch}]++
			return nil, fmt.Errorf("sink is gone")
		}
		if err := e.Run(stream.NewSliceSource(recs)); err == nil {
			t.Fatal("permanent emission failure never surfaced from Finish")
		}
		if emitted != 0 {
			t.Errorf("%d emissions delivered despite permanent failure", emitted)
		}
		degs := e.EpochDegradations()
		if n := e.Stats().ResultErrors; n != len(degs)*len(chaosQueries) {
			t.Errorf("ResultErrors = %d; want %d (every query of every epoch)", n, len(degs)*len(chaosQueries))
		}
		for k, n := range calls {
			if n != 3 {
				t.Errorf("epoch %d of %v attempted %d times; want the full budget of 3", k.epoch, k.rel, n)
			}
		}
		assertLedger(t, e, uint64(len(recs)))
	})
}

// TestCheckpointV3DurabilityRoundTrip: an engine with durability state
// writes a v3 image whose footer carries the ledger; restoring it — even
// into a storeless engine — round-trips the ledger, an attached store's
// contents override the footer, and truncated or future-versioned images
// are rejected.
func TestCheckpointV3DurabilityRoundTrip(t *testing.T) {
	recs, groups := testWorkload(t, 12000)
	opts := Options{M: 8000, Seed: 3}

	// Dead disk: every closed epoch degrades to unpersisted, giving the
	// footer a non-trivial ledger to carry.
	ffs := epochstore.NewFaultFS(nil, epochstore.Faults{})
	st := openStore(t, filepath.Join(t.TempDir(), "store"), epochstore.Options{FS: ffs})
	defer st.Close()
	ffs.CrashNow()
	sopts := opts
	sopts.Store = st
	sopts.StoreBackoff = noSleep()
	sopts.OnResults = func(attr.Set, uint32, []hfta.Row, Degradation) {}
	e, err := New(pairSQL, groups, sopts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := e.Process(r); err != nil {
			t.Fatal(err)
		}
	}
	e.SyncStore() // settle the ledger before snapshotting it
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	if img[4] != ckptVersionV3 {
		t.Fatalf("image version = %d; want v%d with durability state", img[4], ckptVersionV3)
	}
	d0 := e.Durability()
	if len(d0.Unpersisted) == 0 {
		t.Fatal("dead store produced an empty unpersisted ledger; footer untested")
	}

	// Round trip into a storeless engine: the ledger must survive.
	e2, err := New(pairSQL, groups, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Restore(bytes.NewReader(img)); err != nil {
		t.Fatal(err)
	}
	d2 := e2.Durability()
	if d2.Enabled {
		t.Error("restored storeless engine claims a store")
	}
	if d2.Persisted != d0.Persisted || d2.QueueFull != d0.QueueFull {
		t.Errorf("restored ledger %+v; checkpointed %+v", d2, d0)
	}
	if fmt.Sprint(d2.Unpersisted) != fmt.Sprint(d0.Unpersisted) {
		t.Errorf("restored unpersisted set %v; checkpointed %v", d2.Unpersisted, d0.Unpersisted)
	}

	// With a store attached, its actual contents are authoritative over
	// the footer: an empty store means nothing is persisted.
	st3 := openStore(t, filepath.Join(t.TempDir(), "empty"), epochstore.Options{})
	defer st3.Close()
	topts := opts
	topts.Store = st3
	e3, err := New(pairSQL, groups, topts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e3.Restore(bytes.NewReader(img)); err != nil {
		t.Fatal(err)
	}
	d3 := e3.Durability()
	degs := e3.EpochDegradations()
	if d3.Persisted != 0 || len(d3.Unpersisted) != len(degs) {
		t.Errorf("empty store reconciled to %+v over %d closed epochs", d3, len(degs))
	}

	mustReject := func(t *testing.T, data []byte) {
		t.Helper()
		f, err := New(pairSQL, groups, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Restore(bytes.NewReader(data)); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("err = %v; want ErrBadCheckpoint", err)
		}
	}
	t.Run("truncated footer", func(t *testing.T) {
		for cut := 1; cut <= 16 && cut < len(img); cut++ {
			mustReject(t, img[:len(img)-cut])
		}
	})
	t.Run("future version", func(t *testing.T) {
		b := append([]byte(nil), img...)
		b[4] = ckptVersion + 1
		mustReject(t, b)
	})
}
