package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/attr"
	"repro/internal/epochstore"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/stream"
)

// The checkpoint decoder parses machine state from a file that may be
// truncated, corrupted, or adversarial. Arbitrary bytes must never panic
// it: they either restore cleanly or fail with ErrBadCheckpoint.

// fuzzSQL is a deliberately tiny workload so the fuzzer can construct a
// fresh engine per input cheaply.
var fuzzSQL = []string{
	"select A, B, count(*) as cnt from R group by A, B, time/10",
	"select B, C, count(*) as cnt from R group by B, C, time/10",
}

func fuzzWorkload(tb testing.TB) ([]stream.Record, feedgraph.GroupCounts) {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	schema := stream.MustSchema(3)
	u, err := gen.UniformUniverse(rng, schema, 60, 12)
	if err != nil {
		tb.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 2000, 50)
	queries := []attr.Set{attr.MustParseSet("AB"), attr.MustParseSet("BC")}
	groups, err := EstimateGroups(recs, queries)
	if err != nil {
		tb.Fatal(err)
	}
	return recs, groups
}

// fuzzOptions configures the engine whose workload hash the images carry:
// sharded and shedding with a stateful policy, so the full v2 section
// (shed words, shard weights, ledgers, history) is exercised.
func fuzzOptions() Options {
	return Options{M: 600, Seed: 3, Shards: 2, Budget: 400, Shed: NewUniformShed(0.5, 7)}
}

// fuzzImages runs the workload and returns a matching v2 and v1 image
// written at the same state.
func fuzzImages(tb testing.TB) (v2, v1 []byte) {
	tb.Helper()
	recs, groups := fuzzWorkload(tb)
	e, err := New(fuzzSQL, groups, fuzzOptions())
	if err != nil {
		tb.Fatal(err)
	}
	for _, r := range recs {
		if err := e.Process(r); err != nil {
			tb.Fatal(err)
		}
	}
	var b2, b1 bytes.Buffer
	if err := e.Checkpoint(&b2); err != nil {
		tb.Fatal(err)
	}
	if err := e.checkpointVersion(&b1, ckptVersionV1); err != nil {
		tb.Fatal(err)
	}
	return b2.Bytes(), b1.Bytes()
}

// fuzzImageV3 writes the same engine state as a v3 image: a store is
// attached, so the checkpoint carries the durability footer.
func fuzzImageV3(tb testing.TB) []byte {
	tb.Helper()
	recs, groups := fuzzWorkload(tb)
	st, err := epochstore.Open(filepath.Join(tb.TempDir(), "store"), epochstore.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	defer st.Close()
	opts := fuzzOptions()
	opts.Store = st
	e, err := New(fuzzSQL, groups, opts)
	if err != nil {
		tb.Fatal(err)
	}
	for _, r := range recs {
		if err := e.Process(r); err != nil {
			tb.Fatal(err)
		}
	}
	e.SyncStore() // settle the ledger before it is snapshotted
	var b bytes.Buffer
	if err := e.Checkpoint(&b); err != nil {
		tb.Fatal(err)
	}
	e.persist.stop()
	return b.Bytes()
}

// fuzzWinSQL is the windowed variant of the fuzz workload: sliding 3/2
// windows with both sketch kinds, so v4 images carry panes with HLL and
// t-digest blobs.
var fuzzWinSQL = []string{
	"select A, B, count(*) as cnt, count_distinct(C) as uniq, percentile(C, 90) as p90 from R group by A, B, time/10 window 3 slide 2",
	"select B, C, count(*) as cnt, count_distinct(C) as uniq, percentile(C, 90) as p90 from R group by B, C, time/10 window 3 slide 2",
}

func fuzzWinOptions() Options { return Options{M: 600, Seed: 3} }

// fuzzImageV4 writes a v4 image: the windowed workload run to the same
// stream position, panes and sketch blobs included.
func fuzzImageV4(tb testing.TB) []byte {
	tb.Helper()
	recs, groups := fuzzWorkload(tb)
	e, err := New(fuzzWinSQL, groups, fuzzWinOptions())
	if err != nil {
		tb.Fatal(err)
	}
	for _, r := range recs {
		if err := e.Process(r); err != nil {
			tb.Fatal(err)
		}
	}
	var b bytes.Buffer
	if err := e.Checkpoint(&b); err != nil {
		tb.Fatal(err)
	}
	return b.Bytes()
}

// fuzzSeeds enumerates the seed inputs shared by the fuzz target and the
// checked-in corpus generator.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	v2, v1 := fuzzImages(tb)
	v3 := fuzzImageV3(tb)
	v4 := fuzzImageV4(tb)
	flip := func(img []byte, off int, xor byte) []byte {
		b := append([]byte(nil), img...)
		b[off] ^= xor
		return b
	}
	return [][]byte{
		v2,
		v1,
		nil,
		[]byte(ckptMagic),
		[]byte("XXXX"),
		v2[:10],                 // truncated header
		v2[:len(v2)-5],          // truncated v2 tail
		v1[:len(v1)-5],          // truncated v1 body
		v2[:len(v1)],            // v2 header with the v2 section sheared off
		flip(v2, 4, 0xff),       // mangled version byte
		flip(v2, 5, 0xff),       // flipped workload hash
		flip(v1, 4, 3),          // v1 image relabeled as an unknown version
		flip(v2, len(v1), 0xff), // corrupted shed-word count
		v3,
		v3[:len(v3)-3],            // truncated durability footer
		flip(v3, len(v3)-4, 0xff), // mangled unpersisted-epoch count/entry
		flip(v2, 4, 1),            // v2 payload relabeled v3: footer missing
		v4,
		v4[:len(v4)-9],            // truncated window section
		flip(v4, 4, 7),            // v4 relabeled as v3: pane state sheared off
		flip(v4, len(v4)-1, 0xff), // mangled window-section tail
		flip(v4, len(v4)/2, 0xff), // corrupted pane body
	}
}

// FuzzCheckpointDecode: arbitrary bytes fed to Restore must never panic.
// They either fail (with ErrBadCheckpoint for anything malformed) or
// restore an engine that can keep processing records.
func FuzzCheckpointDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	recs, groups := fuzzWorkload(f)
	probe := recs[:50]
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode into both deployment shapes: the sharded tumbling engine
		// (v1–v3 sections) and the windowed engine (v4 pane section).
		engines := []func() (*Engine, error){
			func() (*Engine, error) { return New(fuzzSQL, groups, fuzzOptions()) },
			func() (*Engine, error) { return New(fuzzWinSQL, groups, fuzzWinOptions()) },
		}
		for _, mk := range engines {
			e, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := e.Restore(bytes.NewReader(data)); err != nil {
				continue
			}
			// Whatever the decoder accepted must leave a usable engine:
			// feed it records and drain results without panicking.
			for _, r := range probe {
				if err := e.Process(r); err != nil {
					t.Fatalf("restored engine cannot process: %v", err)
				}
			}
			if err := e.Finish(); err != nil {
				t.Fatalf("restored engine cannot finish: %v", err)
			}
			_ = e.AllResults()
			_ = e.WindowResults()
			_ = e.Stats()
		}
	})
}

// TestRestoreRejectsCorruptV2 covers the v2 framing the generic corrupt
// table (checkpoint_test.go) does not reach: the shed-state, flow-length,
// and shard sections, plus a prefix sweep across the whole image.
func TestRestoreRejectsCorruptV2(t *testing.T) {
	v2, v1 := fuzzImages(t)
	_, groups := fuzzWorkload(t)
	fresh := func() *Engine {
		e, err := New(fuzzSQL, groups, fuzzOptions())
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	mustReject := func(t *testing.T, data []byte) {
		t.Helper()
		if _, err := fresh().Restore(bytes.NewReader(data)); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("err = %v; want ErrBadCheckpoint", err)
		}
	}

	// The v2 section starts where the v1 payload ends (same engine state,
	// same prefix). Locate its fields from the known section layout.
	v2Off := len(v1)
	nWords := binary.LittleEndian.Uint32(v2[v2Off:])
	if nWords != 2 {
		t.Fatalf("expected 2 shed words (UniformShed), image has %d; update the offsets", nWords)
	}
	flowOff := v2Off + 4 + int(nWords)*8
	nFlows := binary.LittleEndian.Uint32(v2[flowOff:])
	shardOff := flowOff + 4 + int(nFlows)*12

	put32 := func(img []byte, off int, v uint32) []byte {
		b := append([]byte(nil), img...)
		binary.LittleEndian.PutUint32(b[off:], v)
		return b
	}
	put64 := func(img []byte, off int, v uint64) []byte {
		b := append([]byte(nil), img...)
		binary.LittleEndian.PutUint64(b[off:], v)
		return b
	}

	t.Run("huge shed-word count", func(t *testing.T) {
		mustReject(t, put32(v2, v2Off, 1<<31))
	})
	t.Run("huge flow count", func(t *testing.T) {
		mustReject(t, put32(v2, flowOff, 1<<31))
	})
	t.Run("huge shard count", func(t *testing.T) {
		mustReject(t, put32(v2, shardOff, 1<<31))
	})
	t.Run("shard count mismatch", func(t *testing.T) {
		// 0 shards parses but contradicts the 2-shard engine.
		mustReject(t, put32(v2, shardOff, 0))
	})
	t.Run("shard weight NaN", func(t *testing.T) {
		mustReject(t, put64(v2, shardOff+4, math.Float64bits(math.NaN())))
	})
	t.Run("shed rate out of range", func(t *testing.T) {
		// First shed word is the UniformShed rate; 2.0 is not a probability.
		mustReject(t, put64(v2, v2Off+4, math.Float64bits(2.0)))
	})
	t.Run("v1 payload relabeled v2", func(t *testing.T) {
		// Claiming version 2 obliges the image to carry the v2 section.
		b := append([]byte(nil), v1...)
		b[4] = ckptVersionV3
		mustReject(t, b)
	})

	t.Run("prefix sweep", func(t *testing.T) {
		// Every strict prefix is a truncation and must be rejected. Sample
		// with a stride (plus the section boundaries) to keep it fast; the
		// fuzz target covers the space continuously.
		offsets := []int{0, 1, 4, 5, 12, v2Off - 1, v2Off, flowOff, shardOff, len(v2) - 1}
		for off := 13; off < len(v2); off += 97 {
			offsets = append(offsets, off)
		}
		for _, off := range offsets {
			if off < 0 || off >= len(v2) {
				continue
			}
			mustReject(t, v2[:off])
		}
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus for
// FuzzCheckpointDecode when run with MAGG_WRITE_CORPUS=1. The files give
// CI's short-mode fuzz run real checkpoint framing to start from without
// having to fuzz from scratch.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("MAGG_WRITE_CORPUS") == "" {
		t.Skip("set MAGG_WRITE_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzCheckpointDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestoreRejectsCorruptV4 covers the v4 window-section framing:
// corrupt pane counts, blob sizes, blob bytes, stale pane epochs, and
// truncations must all reject with ErrBadCheckpoint, and a v4 image
// relabeled as v3 must not silently shed its pane state.
func TestRestoreRejectsCorruptV4(t *testing.T) {
	recs, groups := fuzzWorkload(t)
	e, err := New(fuzzWinSQL, groups, fuzzWinOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := e.Process(r); err != nil {
			t.Fatal(err)
		}
	}
	var b4, b3 bytes.Buffer
	if err := e.Checkpoint(&b4); err != nil {
		t.Fatal(err)
	}
	// The v4 section starts where a v3 serialization of the identical
	// state ends (same prefix, different version byte).
	if err := e.checkpointVersion(&b3, ckptVersionV3); err != nil {
		t.Fatal(err)
	}
	img := b4.Bytes()
	if img[4] != ckptVersion {
		t.Fatalf("windowed image version = %d; want %d", img[4], ckptVersion)
	}
	v4Off := b3.Len()
	if e.winComposer.Next() == 0 || e.winComposer.PaneCount() == 0 {
		t.Fatal("fuzz image carries no closed windows or panes; the corrupt-v4 suite is vacuous")
	}

	fresh := func() *Engine {
		f, err := New(fuzzWinSQL, groups, fuzzWinOptions())
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	mustReject := func(t *testing.T, data []byte) {
		t.Helper()
		if _, err := fresh().Restore(bytes.NewReader(data)); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("err = %v; want ErrBadCheckpoint", err)
		}
	}
	get32 := func(off int) uint32 { return binary.LittleEndian.Uint32(img[off:]) }
	put32 := func(off int, v uint32) []byte {
		b := append([]byte(nil), img...)
		binary.LittleEndian.PutUint32(b[off:], v)
		return b
	}
	flip := func(off int, xor byte) []byte {
		b := append([]byte(nil), img...)
		b[off] ^= xor
		return b
	}

	// Walk the v4 section to the first pane's first sketch blob. Layout:
	// size, slide | nSaggs ×(kind,input,q) | prec, comp | next | panes.
	arity := 2            // both fuzz queries group two attributes
	nAggs := len(e.aggs)  // exact slots per row
	off := v4Off + 8      // size, slide
	nS := int(get32(off)) // sketch agg count
	off += 4 + nS*17      // kind u8 + input i64 + q f64
	off += 9              // precision u8 + compression f64
	off += 8              // window cursor
	nPanesOff := off
	if get32(nPanesOff) == 0 {
		t.Fatal("image carries zero panes")
	}
	off += 4
	paneEpochOff := off
	off += 4 + 32 // epoch + stats
	if img[off] == 0 {
		t.Fatal("first pane names no relations")
	}
	off++    // nRels
	off += 4 // rel
	nRows := int(get32(off))
	off += 4 + nRows*(arity*4+nAggs*8)
	nSk := int(get32(off))
	if nSk == 0 {
		t.Fatal("first pane relation carries no sketch blobs")
	}
	off += 4
	off += arity * 4 // first blob's key
	blobLenOff := off
	blobOff := off + 4

	t.Run("pane count over cap", func(t *testing.T) {
		mustReject(t, put32(nPanesOff, ckptMaxPanes+1))
	})
	t.Run("blob size over cap", func(t *testing.T) {
		mustReject(t, put32(blobLenOff, ckptMaxBlob+1))
	})
	t.Run("corrupt sketch blob", func(t *testing.T) {
		mustReject(t, flip(blobOff, 0xff))
	})
	t.Run("stale pane epoch", func(t *testing.T) {
		// An epoch older than the live window range must be rejected, not
		// silently resurrected.
		mustReject(t, put32(paneEpochOff, 0))
	})
	t.Run("v4 relabeled v3", func(t *testing.T) {
		mustReject(t, flip(4, ckptVersion^ckptVersionV3))
	})
	t.Run("window section truncations", func(t *testing.T) {
		// Sample with a stride plus the section boundaries; the fuzz
		// target covers the space continuously.
		cuts := []int{v4Off, nPanesOff, paneEpochOff, blobLenOff, blobOff, len(img) - 1}
		for cut := v4Off; cut < len(img); cut += 211 {
			cuts = append(cuts, cut)
		}
		for _, cut := range cuts {
			mustReject(t, img[:cut])
		}
	})
}

// TestFuzzCorpusCoversCurrentVersion fails the build when the checked-in
// fuzz corpus lags the checkpoint format: at least one seed must be a
// well-formed image of the current version, so CI's short fuzz run
// always starts from current framing. Regenerate with
// MAGG_WRITE_CORPUS=1 when the format version bumps.
func TestFuzzCorpusCoversCurrentVersion(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzCheckpointDecode")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing: %v", err)
	}
	versions := map[byte]bool{}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		// Corpus files are `go test fuzz v1` format: a header line, then
		// one []byte("...") line per argument.
		for _, line := range bytes.Split(data, []byte("\n")) {
			if !bytes.HasPrefix(line, []byte("[]byte(")) {
				continue
			}
			q := string(line[len("[]byte(") : len(line)-1])
			seed, err := strconv.Unquote(q)
			if err != nil {
				t.Fatalf("%s: unparseable corpus line: %v", ent.Name(), err)
			}
			if len(seed) >= 5 && seed[:4] == ckptMagic {
				versions[seed[4]] = true
			}
		}
	}
	for v := byte(ckptVersionV1); v <= ckptVersion; v++ {
		if !versions[v] {
			t.Errorf("no corpus seed carries a v%d image; regenerate with MAGG_WRITE_CORPUS=1 go test -run TestWriteFuzzCorpus ./internal/core", v)
		}
	}
}
