// Optimizer tour: a walk through the paper's machinery without running a
// stream — the feeding graph, the collision-rate model, the cost of
// hand-picked configurations, the space-allocation schemes, and the
// phantom-choosing algorithms, side by side.
//
//	go run ./examples/optimizer-tour
package main

import (
	"fmt"
	"log"
	"time"

	magg "repro"
)

func main() {
	// The paper's running example: queries {AB, BC, BD, CD} over the
	// real-trace surrogate.
	universe, trace, err := magg.PaperTrace(7)
	if err != nil {
		log.Fatal(err)
	}
	queries := []magg.Relation{
		magg.MustRelation("AB"), magg.MustRelation("BC"),
		magg.MustRelation("BD"), magg.MustRelation("CD"),
	}
	graph, err := magg.NewFeedingGraph(queries)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- feeding graph (Figure 4) --")
	fmt.Printf("queries:            %v\n", graph.Queries)
	fmt.Printf("candidate phantoms: %v\n\n", graph.Phantoms)

	// Group counts measured on the trace.
	groups, err := magg.EstimateGroups(trace.Records, graph.Relations())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("-- measured group counts --")
	for _, r := range graph.Relations() {
		fmt.Printf("g(%v) = %.0f\n", r, groups[r])
	}
	fmt.Println()

	fmt.Println("-- collision-rate model (Section 4) --")
	for _, ratio := range []float64{0.5, 1, 2, 5} {
		fmt.Printf("g/b = %-4v -> x = %.3f\n", ratio, magg.CollisionRate(ratio*1000, 1000))
	}
	fmt.Println()

	// Cost of the three hand-drawn configurations of Figure 3.
	p := magg.DefaultParams()
	const m = 40000
	fmt.Println("-- modeled cost of the Figure 3 configurations (SL allocation, M = 40000) --")
	for _, notation := range []string{
		"ABC(AB BC) BD CD",
		"AB BCD(BC BD CD)",
		"ABCD(AB BCD(BC BD CD))",
		"AB BC BD CD", // no phantoms
	} {
		cfg, err := magg.ParseConfig(notation, queries)
		if err != nil {
			log.Fatal(err)
		}
		alloc, err := magg.Allocate(magg.AllocSL, cfg, groups, m, p)
		if err != nil {
			log.Fatal(err)
		}
		c, err := magg.PerRecordCost(cfg, groups, alloc, p)
		if err != nil {
			log.Fatal(err)
		}
		eu, err := magg.EndOfEpochCost(cfg, groups, alloc, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s e_m = %7.4f   E_u = %8.0f\n", notation, c, eu)
	}
	fmt.Println()

	// Allocation schemes compared on one configuration.
	fmt.Println("-- space allocation schemes on ABCD(AB BCD(BC BD CD)) (Section 5) --")
	cfg, err := magg.ParseConfig("ABCD(AB BCD(BC BD CD))", queries)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range []magg.AllocScheme{magg.AllocSL, magg.AllocSR, magg.AllocPL, magg.AllocPR, magg.AllocES} {
		alloc, err := magg.Allocate(s, cfg, groups, m, p)
		if err != nil {
			log.Fatal(err)
		}
		c, err := magg.PerRecordCost(cfg, groups, alloc, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3s e_m = %.4f\n", s, c)
	}
	fmt.Println()

	// Phantom choosing: GCSL vs the exhaustive optimum.
	fmt.Println("-- phantom choosing (Section 6.3) --")
	start := time.Now()
	plan, err := magg.Plan(queries, groups, m, p)
	if err != nil {
		log.Fatal(err)
	}
	gcslTime := time.Since(start)
	start = time.Now()
	opt, err := magg.PlanOptimal(queries, groups, m, p, 50)
	if err != nil {
		log.Fatal(err)
	}
	epesTime := time.Since(start)
	fmt.Printf("GCSL: %-30s cost %.4f  (planned in %v)\n", plan.Config, plan.Cost, gcslTime.Round(time.Microsecond))
	fmt.Printf("EPES: %-30s cost %.4f  (planned in %v)\n", opt.Config, opt.Cost, epesTime.Round(time.Millisecond))
	fmt.Printf("GCSL is within %.1f%% of the exhaustive optimum\n", (plan.Cost/opt.Cost-1)*100)
	_ = universe
}
