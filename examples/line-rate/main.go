// Line rate: why the optimization matters. An LFTA with bounded
// processing capacity (weighted operations per second) drops whatever it
// cannot afford — the paper's Section 3.3 motivation. This example runs
// the same queries through the GCSL plan and the no-phantom plan at
// several capacities and reports drop rates, then shows the multi-LFTA
// deployment (one shard per core, as Gigascope runs one LFTA per
// interface) absorbing the same load in parallel.
//
//	go run ./examples/line-rate
package main

import (
	"fmt"
	"log"

	magg "repro"
)

func main() {
	schema := magg.MustSchema(4)
	universe, err := magg.NewNestedUniverse(3, schema, []int{552, 1846, 2117, 2837}, 1500)
	if err != nil {
		log.Fatal(err)
	}
	records := magg.GenerateUniform(4, universe, 500000, 50) // 10k records/second

	queries := []magg.Relation{
		magg.MustRelation("A"), magg.MustRelation("B"),
		magg.MustRelation("C"), magg.MustRelation("D"),
	}
	groups, err := magg.EstimateGroups(records[:50000], queries)
	if err != nil {
		log.Fatal(err)
	}
	p := magg.DefaultParams()
	const m = 40000

	gcsl, err := magg.Plan(queries, groups, m, p)
	if err != nil {
		log.Fatal(err)
	}
	graph, err := magg.NewFeedingGraph(queries)
	if err != nil {
		log.Fatal(err)
	}
	noPhCfg, err := magg.ParseConfig("A B C D", queries)
	if err != nil {
		log.Fatal(err)
	}
	noPhAlloc, err := magg.Allocate(magg.AllocSL, noPhCfg, groups, m, p)
	if err != nil {
		log.Fatal(err)
	}
	_ = graph

	fmt.Printf("GCSL plan:      %s (modeled %.2f ops/record)\n", gcsl.Config, gcsl.Cost)
	noPhCost, _ := magg.PerRecordCost(noPhCfg, groups, noPhAlloc, p)
	fmt.Printf("no-phantom:     %s (modeled %.2f ops/record)\n\n", noPhCfg, noPhCost)

	rate := float64(len(records)) / 50 // records per stream second

	fmt.Println("drop rates under bounded LFTA capacity:")
	fmt.Println("capacity(xrate)   GCSL      no-phantom")
	for _, mult := range []float64{4, 8, 16, 32} {
		budget := rate * mult
		row := fmt.Sprintf("%-17v", mult)
		for _, plan := range []struct {
			cfg   *magg.Config
			alloc magg.Alloc
		}{{gcsl.Config, gcsl.Alloc}, {noPhCfg, noPhAlloc}} {
			rt, err := magg.NewLFTA(plan.cfg, plan.alloc, magg.CountStar, 11, nil)
			if err != nil {
				log.Fatal(err)
			}
			paced, err := magg.NewPacedLFTA(rt, p.C1, p.C2, budget)
			if err != nil {
				log.Fatal(err)
			}
			if err := paced.Run(magg.NewSliceSource(records), 0); err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("%-10.2f", paced.DropRate()*100)
		}
		fmt.Println(row + "  (%)")
	}

	// Multi-LFTA deployment: 4 shards processing in parallel with
	// per-shard eviction buffers, exact results at the shared HFTA.
	agg, err := magg.NewAggregator(queries, magg.CountStar)
	if err != nil {
		log.Fatal(err)
	}
	sharded, err := magg.NewShardedLFTA(gcsl.Config, gcsl.Alloc, magg.CountStar, 11, nil, 4)
	if err != nil {
		log.Fatal(err)
	}
	sharded.SetBatchSink(agg.ConsumeBatch, 0)
	ops, err := sharded.RunParallel(magg.NewSliceSource(records), 10)
	if err != nil {
		log.Fatal(err)
	}
	want := magg.Reference(records, queries, magg.CountStar, 10)
	fmt.Printf("\n4-shard parallel run: %d records, %.2f ops/record, results exact: %v\n",
		ops.Records, ops.PerRecordCost(p.C1, p.C2), magg.RowsEqual(agg.AllRows(), want))
}
