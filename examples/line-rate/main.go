// Line rate: why the optimization matters. An LFTA with bounded
// processing capacity (weighted operations per second) drops whatever it
// cannot afford — the paper's Section 3.3 motivation. This example runs
// the same queries through the GCSL plan and the no-phantom plan at
// several capacities and reports drop rates via the engine's unified
// budget path, shows the multi-LFTA deployment (one shard per core, as
// Gigascope runs one LFTA per interface) absorbing the same load in
// parallel, and finishes with a sharded engine under one global budget —
// per-shard degradation ledgers summing exactly to the global one.
//
//	go run ./examples/line-rate
package main

import (
	"fmt"
	"log"

	magg "repro"
)

func main() {
	schema := magg.MustSchema(4)
	universe, err := magg.NewNestedUniverse(3, schema, []int{552, 1846, 2117, 2837}, 1500)
	if err != nil {
		log.Fatal(err)
	}
	records := magg.GenerateUniform(4, universe, 500000, 50) // 10k records/second

	queries := []magg.Relation{
		magg.MustRelation("A"), magg.MustRelation("B"),
		magg.MustRelation("C"), magg.MustRelation("D"),
	}
	groups, err := magg.EstimateGroups(records[:50000], queries)
	if err != nil {
		log.Fatal(err)
	}
	p := magg.DefaultParams()
	const m = 40000

	gcsl, err := magg.Plan(queries, groups, m, p)
	if err != nil {
		log.Fatal(err)
	}
	graph, err := magg.NewFeedingGraph(queries)
	if err != nil {
		log.Fatal(err)
	}
	noPhCfg, err := magg.ParseConfig("A B C D", queries)
	if err != nil {
		log.Fatal(err)
	}
	noPhAlloc, err := magg.Allocate(magg.AllocSL, noPhCfg, groups, m, p)
	if err != nil {
		log.Fatal(err)
	}
	_ = graph

	fmt.Printf("GCSL plan:      %s (modeled %.2f ops/record)\n", gcsl.Config, gcsl.Cost)
	noPhCost, _ := magg.PerRecordCost(noPhCfg, groups, noPhAlloc, p)
	fmt.Printf("no-phantom:     %s (modeled %.2f ops/record)\n\n", noPhCfg, noPhCost)

	rate := float64(len(records)) / 50 // records per stream second

	// The unified budget path: the engine enforces the capacity (c1 per
	// probe, c2 per transfer, refilled each stream second) and keeps the
	// Offered == Processed + Dropped + Late ledger. A fixed planner pins
	// each run to the plan under comparison; one epoch spans the trace.
	sqls := []string{
		"select A, count(*) as cnt from R group by A, time/100",
		"select B, count(*) as cnt from R group by B, time/100",
		"select C, count(*) as cnt from R group by C, time/100",
		"select D, count(*) as cnt from R group by D, time/100",
	}
	fixed := func(res *magg.PlanResult) magg.Planner {
		return func(*magg.FeedingGraph, magg.GroupCounts, int, magg.Params) (*magg.PlanResult, error) {
			return res, nil
		}
	}
	noPh := &magg.PlanResult{Config: noPhCfg, Alloc: noPhAlloc, Cost: noPhCost}
	runAt := func(plan *magg.PlanResult, budget float64, shards int) *magg.Engine {
		eng, err := magg.NewEngine(sqls, groups, magg.Options{
			M: m, Params: p, Seed: 11,
			Planner: fixed(plan),
			Budget:  budget,
			Shards:  shards,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := eng.Run(magg.NewSliceSource(records)); err != nil {
			log.Fatal(err)
		}
		return eng
	}

	fmt.Println("drop rates under bounded LFTA capacity:")
	fmt.Println("capacity(xrate)   GCSL      no-phantom")
	for _, mult := range []float64{4, 8, 16, 32} {
		budget := rate * mult
		row := fmt.Sprintf("%-17v", mult)
		for _, plan := range []*magg.PlanResult{gcsl, noPh} {
			d := runAt(plan, budget, 0).Stats().Degradation
			row += fmt.Sprintf("%-10.2f", d.SheddingRate()*100)
		}
		fmt.Println(row + "  (%)")
	}

	// Multi-LFTA deployment: 4 shards processing in parallel with
	// per-shard eviction buffers, exact results at the shared HFTA.
	agg, err := magg.NewAggregator(queries, magg.CountStar)
	if err != nil {
		log.Fatal(err)
	}
	sharded, err := magg.NewShardedLFTA(gcsl.Config, gcsl.Alloc, magg.CountStar, 11, nil, 4)
	if err != nil {
		log.Fatal(err)
	}
	sharded.SetBatchSink(agg.ConsumeBatch, 0)
	ops, err := sharded.RunParallel(magg.NewSliceSource(records), 10)
	if err != nil {
		log.Fatal(err)
	}
	want := magg.Reference(records, queries, magg.CountStar, 10)
	fmt.Printf("\n4-shard parallel run: %d records, %.2f ops/record, results exact: %v\n",
		ops.Records, ops.PerRecordCost(p.C1, p.C2), magg.RowsEqual(agg.AllRows(), want))

	// Sharded engine under ONE global budget: the budget is split across
	// shards in proportion to measured demand and reconciled every epoch,
	// and every shard keeps its own degradation ledger. The per-shard
	// ledgers sum exactly to the global Offered == Processed + Dropped +
	// Late identity — overload control is unified, not per-shard ad hoc.
	// (At 1x rate the single engine above would drop >80%; sharding both
	// spreads the budget and shrinks eviction traffic, so far less sheds.)
	eng := runAt(gcsl, rate, 4)
	total := eng.Stats().Degradation
	fmt.Printf("\n4-shard engine, one global budget (1x rate):\n")
	fmt.Printf("  global: offered %d = processed %d + dropped %d + late %d\n",
		total.Offered, total.Processed, total.Dropped, total.Late)
	for i, d := range eng.ShardDegradations() {
		fmt.Printf("  shard %d: offered %d, processed %d, dropped %d\n",
			i, d.Offered, d.Processed, d.Dropped)
	}
}
