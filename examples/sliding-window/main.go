// Sliding windows over panes: two queries with a "window 4 slide 2"
// clause plus mergeable sketch aggregates (count_distinct, median,
// p95). Every closed epoch becomes a pane; the HFTA composes panes into
// overlapping windows and emits one answer set per window close, with
// exact aggregates composed exactly and sketch estimates merged from
// the panes' serialized partials. See docs/WINDOWS.md.
//
//	go run ./examples/sliding-window
package main

import (
	"fmt"
	"log"

	magg "repro"
)

func main() {
	// A 4-attribute stream with 1500 distinct tuples drawn from a small
	// value range (so many tuples share an (A,B) prefix and per-group
	// distinct counts are interesting), 150k records over 80 seconds —
	// at time/10 that is 8 epochs, so windows of 4 epochs sliding by 2
	// close at epochs 3, 5, 7 and the tail flush.
	schema := magg.MustSchema(4)
	universe, err := magg.NewUniformUniverse(1, schema, 1500, 30)
	if err != nil {
		log.Fatal(err)
	}
	records := magg.GenerateUniform(2, universe, 150000, 80)

	// The window clause rides on the epoch clause: size and slide are in
	// epochs. Sketch aggregates (count_distinct, median, percentile) are
	// merged from per-pane partials, so a group's distinct count over the
	// window is one HLL — not a sum of per-epoch counts.
	sqls := []string{
		"select A, B, count(*) as cnt, sum(C) as sc, count_distinct(D) as uniq, percentile(C, 95) as p95 from R group by A, B, time/10 window 4 slide 2",
		"select B, C, count(*) as cnt, sum(C) as sc, count_distinct(D) as uniq, percentile(C, 95) as p95 from R group by B, C, time/10 window 4 slide 2",
	}
	queries := []magg.Relation{magg.MustRelation("AB"), magg.MustRelation("BC")}
	groups, err := magg.EstimateGroups(records[:20000], queries)
	if err != nil {
		log.Fatal(err)
	}

	// Stream windows out as they close instead of retaining them: the
	// handler gets one call per query per closed window.
	opts := magg.Options{M: 20000}
	opts.OnWindow = func(rel magg.Relation, led magg.WindowLedger, rows []magg.WindowRow) {
		fmt.Printf("window %d [epochs %d..%d] query %v: %d groups (offered %d = processed %d + dropped %d + late %d)\n",
			led.Window, led.Start, led.End, rel, len(rows),
			led.Stats.Offered, led.Stats.Processed, led.Stats.Dropped, led.Stats.Late)
		for _, r := range rows[:min(3, len(rows))] {
			// Aggs are the exact slots (cnt, sc); Sketch holds the
			// estimates (uniq, p95) in declaration order.
			fmt.Printf("  %v -> cnt=%d sum=%d  ~uniq=%.0f ~p95=%.0f\n",
				r.Key, r.Aggs[0], r.Aggs[1], r.Sketch[0], r.Sketch[1])
		}
	}

	eng, err := magg.NewEngine(sqls, groups, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned configuration: %s\n\n", eng.Plan().Config)

	if err := eng.Run(magg.NewSliceSource(records)); err != nil {
		log.Fatal(err)
	}
	if err := eng.Finish(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d windows closed over %d epochs\n", eng.Stats().Windows, eng.Stats().Epochs)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
