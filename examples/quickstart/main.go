// Quickstart: three related aggregation queries over one synthetic
// stream, evaluated through the two-level engine with phantom sharing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	magg "repro"
)

func main() {
	// A 4-attribute stream relation (think srcIP, srcPort, dstIP,
	// dstPort) with 2000 distinct groups, 200k records over 60 seconds.
	schema := magg.MustSchema(4)
	universe, err := magg.NewUniformUniverse(1, schema, 2000, 500)
	if err != nil {
		log.Fatal(err)
	}
	records := magg.GenerateUniform(2, universe, 200000, 60)

	// Three queries that differ only in their grouping attributes — the
	// shape the multiple-aggregation optimizer is built for.
	sqls := []string{
		"select A, B, count(*) as cnt from R group by A, B, time/10",
		"select B, C, count(*) as cnt from R group by B, C, time/10",
		"select C, D, count(*) as cnt from R group by C, D, time/10",
	}
	queries := []magg.Relation{
		magg.MustRelation("AB"),
		magg.MustRelation("BC"),
		magg.MustRelation("CD"),
	}

	// Measure group counts on a sample; they drive the planner.
	groups, err := magg.EstimateGroups(records[:20000], queries)
	if err != nil {
		log.Fatal(err)
	}

	// Build the engine with 20,000 units (80 KB) of LFTA memory. The
	// planner decides which phantoms to maintain and how to size every
	// hash table.
	eng, err := magg.NewEngine(sqls, groups, magg.Options{M: 20000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned configuration: %s\n", eng.Plan().Config)
	fmt.Printf("modeled cost: %.3f per record\n\n", eng.Plan().Cost)

	if err := eng.Run(magg.NewSliceSource(records)); err != nil {
		log.Fatal(err)
	}

	// Per-epoch answers for one query.
	ab := magg.MustRelation("AB")
	for _, epoch := range eng.Epochs(ab) {
		rows, err := eng.Results(ab, epoch)
		if err != nil {
			log.Fatal(err)
		}
		total := int64(0)
		for _, r := range rows {
			total += r.Aggs[0]
		}
		fmt.Printf("epoch %d: query AB has %d groups, %d records\n", epoch, len(rows), total)
	}

	st := eng.Stats()
	fmt.Printf("\nLFTA operations: %d probes, %d transfers to HFTA\n", st.Ops.Probes, st.Ops.Transfers)
	fmt.Printf("actual cost: %.3f per record (c2/c1 = 50)\n", st.Ops.PerRecordCost(1, 50))
}
