// Netflow monitor: the paper's motivating application. Several IP-traffic
// monitoring queries — per source, per destination/port, per flow pair —
// run over a clustered packet trace; a HAVING clause surfaces heavy
// hitters ("report the number of packets, provided it is more than N"),
// the query shape the paper's introduction opens with.
//
//	go run ./examples/netflow-monitor
package main

import (
	"fmt"
	"log"

	magg "repro"
)

func main() {
	// The surrogate of the paper's real dataset: 860k TCP headers over
	// 62 seconds, 2837 flow groups, heavy clusteredness. Attributes:
	// A = source IP, B = source port, C = destination IP, D = dest port.
	universe, trace, err := magg.PaperTrace(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d packets, %d flow groups, average flow length %.1f\n\n",
		len(trace.Records), universe.Size(), trace.AvgFlowLength())

	// The paper's exploratory query mix, on 5-second epochs. The heavy-
	// hitter thresholds are the "provided this number of packets is more
	// than 100" filters of the introduction.
	sqls := []string{
		"select A, count(*) as cnt from R group by A, time/5 having cnt > 100",
		"select C, D, count(*) as cnt from R group by C, D, time/5 having cnt > 100",
		"select A, C, count(*) as cnt from R group by A, C, time/5 having cnt > 100",
	}
	queries := []magg.Relation{
		magg.MustRelation("A"),
		magg.MustRelation("CD"),
		magg.MustRelation("AC"),
	}

	groups, err := magg.EstimateGroups(trace.Records[:100000], queries)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := magg.NewEngine(sqls, groups, magg.Options{M: 40000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LFTA configuration: %s\n", eng.Plan().Config)
	for _, ph := range eng.Plan().Config.Phantoms() {
		fmt.Printf("  phantom %v shares work for the queries below it\n", ph)
	}
	fmt.Println()

	if err := eng.Run(magg.NewSliceSource(trace.Records)); err != nil {
		log.Fatal(err)
	}

	// Heavy hitters per epoch for the source-IP query.
	srcIP := magg.MustRelation("A")
	for _, epoch := range eng.Epochs(srcIP) {
		rows, err := eng.Results(srcIP, epoch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("epoch %2d: %3d source IPs above 100 packets", epoch, len(rows))
		if len(rows) > 0 {
			max := rows[0]
			for _, r := range rows[1:] {
				if r.Aggs[0] > max.Aggs[0] {
					max = r
				}
			}
			fmt.Printf(" (top: %d with %d packets)", max.Key[0], max.Aggs[0])
		}
		fmt.Println()
	}

	st := eng.Stats()
	fmt.Printf("\n%d packets processed; %.4f weighted LFTA operations per packet\n",
		st.Ops.Records, st.Ops.PerRecordCost(1, 50))
}
