// Adaptive re-planning: the stream's group structure shifts mid-run and
// the engine re-plans its LFTA configuration between epochs — the
// direction the paper's conclusion sketches, enabled by configuration
// choice taking only milliseconds.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	magg "repro"
)

func main() {
	schema := magg.MustSchema(4)

	// Phase 1 (0-49s): balanced traffic over 400 groups.
	phase1U, err := magg.NewUniformUniverse(11, schema, 400, 30)
	if err != nil {
		log.Fatal(err)
	}
	records := magg.GenerateUniform(12, phase1U, 150000, 50)

	// Phase 2 (50-99s): a scan-like pattern — (A, B) cardinality
	// explodes while C and D collapse to a handful of values.
	tuples := make([][]uint32, 4000)
	for i := range tuples {
		tuples[i] = []uint32{uint32(i * 2654435761), uint32(i * 40503), uint32(i % 2), uint32(i % 3)}
	}
	phase2U, err := magg.NewUniverseFromTuples(schema, tuples)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range magg.GenerateUniform(13, phase2U, 150000, 50) {
		records = append(records, magg.Record{Attrs: r.Attrs, Time: 50 + uint32(i*50/150000)})
	}

	sqls := []string{
		"select A, B, count(*) as cnt from R group by A, B, time/10",
		"select B, C, count(*) as cnt from R group by B, C, time/10",
		"select B, D, count(*) as cnt from R group by B, D, time/10",
		"select C, D, count(*) as cnt from R group by C, D, time/10",
	}
	queries := []magg.Relation{
		magg.MustRelation("AB"), magg.MustRelation("BC"),
		magg.MustRelation("BD"), magg.MustRelation("CD"),
	}

	// Seed the planner with phase-1 statistics only; the shift is a
	// surprise it must react to.
	groups, err := magg.EstimateGroups(records[:100000], queries)
	if err != nil {
		log.Fatal(err)
	}

	eng, err := magg.NewEngine(sqls, groups, magg.Options{
		M:    40000,
		Seed: 9,
		Adapt: magg.AdaptOptions{
			Enabled:        true,
			EveryEpochs:    1,
			MinImprovement: 0.02,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial configuration: %s (modeled cost %.3f)\n\n", eng.Plan().Config, eng.Plan().Cost)

	src := magg.NewSliceSource(records)
	lastConfig := eng.Plan().Config.String()
	processed := 0
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := eng.Process(rec); err != nil {
			log.Fatal(err)
		}
		processed++
		if cur := eng.Plan().Config.String(); cur != lastConfig {
			fmt.Printf("after %d records (t=%ds): re-planned to %s (modeled cost %.3f)\n",
				processed, rec.Time, cur, eng.Plan().Cost)
			lastConfig = cur
		}
	}
	if err := eng.Finish(); err != nil {
		log.Fatal(err)
	}

	st := eng.Stats()
	fmt.Printf("\nepochs: %d, adaptive re-plans adopted: %d\n", st.Epochs, st.Replans)
	fmt.Printf("actual cost: %.3f per record\n", st.Ops.PerRecordCost(1, 50))
}
