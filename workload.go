package magg

import (
	"math/rand"

	"repro/internal/gen"
	"repro/internal/stream"
)

// Workload generation wrappers over internal/gen, for examples, tests and
// applications that need synthetic streams.

// FlowConfig parameterizes GenerateFlows.
type FlowConfig = gen.FlowConfig

// NewUniformUniverse draws g distinct full-width group tuples, each
// attribute from a pool of the given size (0 = the full 32-bit space).
func NewUniformUniverse(seed int64, schema Schema, g int, pool uint32) (*Universe, error) {
	return gen.UniformUniverse(rand.New(rand.NewSource(seed)), schema, g, pool)
}

// NewNestedUniverse builds a universe whose prefix relations (A, AB,
// ABC, ...) have exactly the requested cardinalities; this is how the
// paper's real-data group structure is reproduced.
func NewNestedUniverse(seed int64, schema Schema, prefixCards []int, pool uint32) (*Universe, error) {
	return gen.NestedUniverse(rand.New(rand.NewSource(seed)), schema, prefixCards, pool)
}

// NewUniverseFromTuples wraps an explicit set of group tuples (duplicates
// removed).
func NewUniverseFromTuples(schema Schema, tuples [][]uint32) (*Universe, error) {
	return gen.NewUniverse(schema, tuples)
}

// GenerateUniform draws n records uniformly from the universe's groups
// with timestamps spread over [0, duration).
func GenerateUniform(seed int64, u *Universe, n int, duration uint32) []Record {
	return gen.Uniform(rand.New(rand.NewSource(seed)), u, n, duration)
}

// GenerateZipf draws n records under a Zipf(s) group-popularity skew.
func GenerateZipf(seed int64, u *Universe, n int, duration uint32, s float64) ([]Record, error) {
	return gen.Zipf(rand.New(rand.NewSource(seed)), u, n, duration, s)
}

// GenerateFlows produces a clustered netflow-like packet trace: packets of
// one flow share all attributes and arrive interleaved with a bounded
// number of other flows.
func GenerateFlows(seed int64, u *Universe, cfg FlowConfig) (*FlowTrace, error) {
	return gen.Flows(rand.New(rand.NewSource(seed)), u, cfg)
}

// CountGroups measures the number of distinct projections of a record
// batch onto a relation (the g_R of a dataset).
func CountGroups(recs []Record, rel Relation) int { return gen.CountGroups(recs, rel) }

// MustSchema is NewSchema that panics on error.
func MustSchema(n int) Schema { return stream.MustSchema(n) }
