package magg

import (
	"math"
	"path/filepath"
	"testing"
)

// These tests exercise the public facade the way a downstream user would,
// without touching internal packages directly.

func facadeWorkload(t *testing.T) ([]Record, []Relation, GroupCounts) {
	t.Helper()
	schema := MustSchema(4)
	u, err := NewUniformUniverse(1, schema, 600, 60)
	if err != nil {
		t.Fatal(err)
	}
	recs := GenerateUniform(2, u, 40000, 30)
	queries := []Relation{MustRelation("AB"), MustRelation("BC"), MustRelation("CD")}
	groups, err := EstimateGroups(recs, queries)
	if err != nil {
		t.Fatal(err)
	}
	return recs, queries, groups
}

func TestFacadeEngineEndToEnd(t *testing.T) {
	recs, queries, groups := facadeWorkload(t)
	sqls := []string{
		"select A, B, count(*) as cnt from R group by A, B, time/10",
		"select B, C, count(*) as cnt from R group by B, C, time/10",
		"select C, D, count(*) as cnt from R group by C, D, time/10",
	}
	eng, err := NewEngine(sqls, groups, Options{M: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(NewSliceSource(recs)); err != nil {
		t.Fatal(err)
	}
	// Every query's per-epoch counts must sum to the record count.
	for _, q := range queries {
		var total int64
		for _, epoch := range eng.Epochs(q) {
			rows, err := eng.Results(q, epoch)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				total += r.Aggs[0]
			}
		}
		if total != int64(len(recs)) {
			t.Errorf("query %v accounts for %d of %d records", q, total, len(recs))
		}
	}
	if eng.Stats().Ops.Records != uint64(len(recs)) {
		t.Errorf("ops records = %d", eng.Stats().Ops.Records)
	}
}

func TestFacadePlan(t *testing.T) {
	_, queries, groups := facadeWorkload(t)
	p := DefaultParams()
	plan, err := Plan(queries, groups, 40000, p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost <= 0 {
		t.Errorf("plan cost = %v", plan.Cost)
	}
	opt, err := PlanOptimal(queries, groups, 40000, p, 40)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost > plan.Cost*1.001 {
		t.Errorf("optimal cost %v above GCSL %v", opt.Cost, plan.Cost)
	}
	if plan.Cost > opt.Cost*3 {
		t.Errorf("GCSL cost %v more than 3x optimal %v", plan.Cost, opt.Cost)
	}
}

func TestFacadeConfigAndCosts(t *testing.T) {
	_, queries, groups := facadeWorkload(t)
	cfg, err := ParseConfig("ABCD(AB BC CD)", queries)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	for _, scheme := range []AllocScheme{AllocSL, AllocSR, AllocPL, AllocPR, AllocES} {
		alloc, err := Allocate(scheme, cfg, groups, 20000, p)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		em, err := PerRecordCost(cfg, groups, alloc, p)
		if err != nil {
			t.Fatal(err)
		}
		eu, err := EndOfEpochCost(cfg, groups, alloc, p)
		if err != nil {
			t.Fatal(err)
		}
		if em <= 0 || eu <= 0 {
			t.Errorf("%s: costs %v / %v", scheme, em, eu)
		}
	}
	graph, err := NewFeedingGraph(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(graph.Phantoms) == 0 {
		t.Error("no candidate phantoms")
	}
}

func TestFacadeRelationAndQueryParsing(t *testing.T) {
	r, err := ParseRelation("ABD")
	if err != nil || r.String() != "ABD" {
		t.Errorf("ParseRelation = %v, %v", r, err)
	}
	if _, err := ParseRelation("A1"); err == nil {
		t.Error("bad relation accepted")
	}
	spec, err := ParseQuery("select A, avg(B) as len from R group by A, time/60")
	if err != nil {
		t.Fatal(err)
	}
	if spec.GroupBy != MustRelation("A") || spec.EpochLen != 60 {
		t.Errorf("spec = %+v", spec)
	}
	if cols := spec.OutputColumns(); len(cols) != 1 || cols[0] != "len" {
		t.Errorf("OutputColumns = %v", cols)
	}
}

func TestFacadeCollisionRate(t *testing.T) {
	// Monotone in g/b and ≈ 1/e at g = b.
	if x := CollisionRate(1000, 1000); math.Abs(x-1/math.E) > 0.02 {
		t.Errorf("CollisionRate(g=b) = %v", x)
	}
	if CollisionRate(100, 1000) >= CollisionRate(5000, 1000) {
		t.Error("rate not increasing in g/b")
	}
}

func TestFacadeTraceIO(t *testing.T) {
	recs, _, _ := facadeWorkload(t)
	schema := MustSchema(4)
	path := filepath.Join(t.TempDir(), "trace.magt")
	if err := WriteTraceFile(path, schema, recs[:100]); err != nil {
		t.Fatal(err)
	}
	gotSchema, got, err := ReadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotSchema.NumAttrs != 4 || len(got) != 100 {
		t.Errorf("round trip: %d attrs, %d recs", gotSchema.NumAttrs, len(got))
	}
}

func TestFacadeGenerators(t *testing.T) {
	schema := MustSchema(3)
	u, err := NewNestedUniverse(3, schema, []int{50, 120, 200}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g := CountGroups(GenerateUniform(4, u, 5000, 10), MustRelation("ABC")); g > 200 {
		t.Errorf("generated %d groups from a 200-group universe", g)
	}
	z, err := GenerateZipf(5, u, 5000, 10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) != 5000 {
		t.Errorf("zipf generated %d records", len(z))
	}
	ft, err := GenerateFlows(6, u, FlowConfig{NumRecords: 5000, MeanFlowLen: 10, Concurrency: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ft.AvgFlowLength() < 2 {
		t.Errorf("flow trace not clustered: l_a = %v", ft.AvgFlowLength())
	}
	tu, err := NewUniverseFromTuples(schema, [][]uint32{{1, 2, 3}, {1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if tu.Size() != 2 {
		t.Errorf("duplicate tuples not collapsed: size %d", tu.Size())
	}
}

func TestFacadePaperTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("paper trace generation is slow in -short mode")
	}
	u, ft, err := PaperTrace(42)
	if err != nil {
		t.Fatal(err)
	}
	if u.Size() != 2837 || len(ft.Records) != 860000 {
		t.Errorf("paper trace: %d groups, %d records", u.Size(), len(ft.Records))
	}
}

func TestFacadePlannerVariants(t *testing.T) {
	recs, _, groups := facadeWorkload(t)
	_ = recs
	sqls := []string{
		"select A, B, count(*) as cnt from R group by A, B, time/10",
		"select B, C, count(*) as cnt from R group by B, C, time/10",
		"select C, D, count(*) as cnt from R group by C, D, time/10",
	}
	for name, planner := range map[string]Planner{
		"gcsl": GCSLPlanner,
		"gs":   GSPlanner(1.0),
		"none": NoPhantomPlanner,
	} {
		eng, err := NewEngine(sqls, groups, Options{M: 20000, Planner: planner})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "none" && len(eng.Plan().Config.Phantoms()) != 0 {
			t.Error("no-phantom planner chose phantoms")
		}
	}
}
