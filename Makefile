# Developer targets. `make check` is the tier-1 gate; `make race` runs the
# race detector over the concurrent hot path (parallel LFTA shards,
# batched eviction buffers, sharded HFTA merge).

GO ?= go

.PHONY: build test vet race fuzz-short crash-test windows-test columnar-test check bench bench-json bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detect every internal package, then re-run the sharded chaos,
# equivalence, and checkpoint suites specifically: the sharded runtime's
# RunParallel fan-out, the runtime eviction buffers, the lock-sharded
# HFTA merge, and the engine's unified budget / checkpoint-v2 paths on
# top of them.
race:
	$(GO) test -race ./internal/...
	$(GO) test -race -run 'TestChaos|TestSharded|TestCheckpoint|TestKillRestore' -count=1 ./internal/core

# Replay the checked-in fuzz seed corpora (testdata/fuzz/...) without
# live fuzzing — what CI runs. Use `go test -fuzz FuzzCheckpointDecode
# -fuzzminimizetime 50x ./internal/core` (or FuzzSegmentDecode in
# ./internal/epochstore) for a live session.
fuzz-short:
	$(GO) test -run 'Fuzz' ./internal/core ./internal/stream ./internal/feedgraph ./internal/query ./internal/epochstore

# The durability crash-point property suites: the epoch store killed at
# ~100 byte offsets per seed (including during recovery), the engine on
# a dying disk, and the checkpoint + store-replay resume equivalences.
crash-test:
	$(GO) test -run 'TestCrashPoint|TestCrashDuring|TestEngineCrashPoints|TestKillRestoreWithStore|TestReplayMatches' -count=1 ./internal/epochstore ./internal/core

# The sliding-window / sketch suites on their own: the oracle-equivalence
# grid (pane-composed windows vs the brute-force oracle, clean and under
# chaos), shard equivalence, kill+restore byte-identity, the chaos window
# ledger identity, and the sketch merge laws + error bounds.
windows-test:
	$(GO) test -run 'TestWindowed|TestGoldenWindowed|TestChaosWindowLedger|TestLateFirstRecord|TestWindowHandler|TestSketchOnly' -count=1 ./internal/core
	$(GO) test -count=1 ./internal/hfta ./internal/sketch
	$(GO) test -run 'TestWindow|TestSketch' -count=1 ./internal/query

# The columnar-pipeline equivalence suite under the race detector:
# ReadColumns ≡ ReadBatch on every source, columnar probes ≡ batch
# probes (victims, stats, contents), ProcessColumns ≡ Process, the fully
# columnar routed sharded path at 1/2/4/8 shards vs sequential + oracle,
# MergeRun ≡ per-entry Consume including forced lock-shard collisions
# and concurrent folds, and the vectorized WHERE stack: selection-vector
# kernels vs their generic forms, compiled filters vs the interpreted
# DNF walk (scalar and columnar, with adaptive reordering), selection-
# aware probes/routing vs compacted dense runs, and ProcessColumnBatch
# vs the scalar engine loop across batch-boundary epoch splits.
columnar-test:
	$(GO) test -race -count=1 -run 'TestReadColumns|TestColumnBatch|TestColumnar|TestProbeColumns|TestHashColumns|TestMergeRun|TestSelVec|TestFilter|TestInterpretedFilter|TestNoWhere' ./internal/stream ./internal/hashtab ./internal/lfta ./internal/hfta ./internal/core ./internal/selvec ./internal/query

check: build vet test race fuzz-short crash-test windows-test columnar-test

# Quick perf numbers for the engine hot path (see docs/PERF.md).
bench:
	$(GO) test -run xxx -bench 'BenchmarkEngineThroughput|BenchmarkHFTAMerge|BenchmarkSharded|BenchmarkRuntimeRecord|BenchmarkLFTAProbe' -benchmem .

# Machine-readable summary, the BENCH_PR<N>.json trajectory format.
bench-json:
	$(GO) run ./cmd/maggbench -json BENCH_PR10.json

# Diff two bench-json reports; fails on a ns/op regression beyond
# THRESHOLD (fractional, default 10%). CI widens it for its short
# smoke run. Usage: make bench-compare OLD=BENCH_PR4.json NEW=BENCH_PR5.json
THRESHOLD ?= 0.10
bench-compare:
	$(GO) run ./cmd/maggbench -compare -threshold $(THRESHOLD) $(OLD) $(NEW)
