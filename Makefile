# Developer targets. `make check` is the tier-1 gate; `make race` runs the
# race detector over the concurrent hot path (parallel LFTA shards,
# batched eviction buffers, sharded HFTA merge).

GO ?= go

.PHONY: build test vet race check bench bench-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Race-detect every internal package: the sharded runtime's RunParallel
# fan-out, the runtime eviction buffers, the lock-sharded HFTA merge, and
# the core engine's checkpoint/shedding paths on top of them.
race:
	$(GO) test -race ./internal/...

check: build vet test race

# Quick perf numbers for the engine hot path (see docs/PERF.md).
bench:
	$(GO) test -run xxx -bench 'BenchmarkEngineThroughput|BenchmarkHFTAMerge|BenchmarkSharded|BenchmarkRuntimeRecord|BenchmarkLFTAProbe' -benchmem .

# Machine-readable summary, the BENCH_PR<N>.json trajectory format.
bench-json:
	$(GO) run ./cmd/maggbench -json BENCH_PR1.json
