package magg

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/choose"
	"repro/internal/collision"
	"repro/internal/cost"
	"repro/internal/experiments"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/hashtab"
	"repro/internal/lfta"
	"repro/internal/spacealloc"
	"repro/internal/stream"
)

// One benchmark per paper table/figure: each runs the corresponding
// experiment harness (quick datasets) and reports its wall time. Use
// cmd/maggbench for the full-size paper runs and the printed series.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewContext(true)
		tab, err := experiments.Run(id, ctx)
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Fprint(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B)   { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }

// Ablation experiments (design choices the paper argues for; see
// EXPERIMENTS.md "Beyond the paper").
func BenchmarkAblation1(b *testing.B) { benchExperiment(b, "ablation1") }
func BenchmarkAblation2(b *testing.B) { benchExperiment(b, "ablation2") }

// Extension experiments (drop behaviour under bounded capacity, scaling
// with query count, skew sensitivity).
func BenchmarkExtDrops(b *testing.B)    { benchExperiment(b, "ext-drops") }
func BenchmarkExtScale(b *testing.B)    { benchExperiment(b, "ext-scale") }
func BenchmarkExtZipf(b *testing.B)     { benchExperiment(b, "ext-zipf") }
func BenchmarkExtAdaptive(b *testing.B) { benchExperiment(b, "ext-adaptive") }

// --- micro benchmarks of the building blocks ---

// BenchmarkLFTAProbe measures the hot path: one probe of an LFTA table.
func BenchmarkLFTAProbe(b *testing.B) {
	tab := hashtab.MustNew(attr.MustParseSet("ABCD"), 4096, []hashtab.AggOp{hashtab.Sum}, 1)
	rng := rand.New(rand.NewSource(1))
	keys := make([][]uint32, 1024)
	for i := range keys {
		keys[i] = []uint32{rng.Uint32() % 500, rng.Uint32() % 500, rng.Uint32() % 500, rng.Uint32() % 500}
	}
	deltas := []int64{1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Probe(keys[i%len(keys)], deltas)
	}
}

// BenchmarkRuntimeRecord measures a full record through a three-level
// configuration (probe + cascades).
func BenchmarkRuntimeRecord(b *testing.B) {
	queries := []attr.Set{
		attr.MustParseSet("AB"), attr.MustParseSet("BC"),
		attr.MustParseSet("BD"), attr.MustParseSet("CD"),
	}
	cfg, err := feedgraph.ParseConfig("ABCD(AB BCD(BC BD CD))", queries)
	if err != nil {
		b.Fatal(err)
	}
	alloc := cost.Alloc{}
	for _, r := range cfg.Rels {
		alloc[r] = 1024
	}
	rt, err := lfta.New(cfg, alloc, lfta.CountStar, 3, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	recs := make([]stream.Record, 1024)
	for i := range recs {
		recs[i] = stream.Record{Attrs: []uint32{rng.Uint32() % 100, rng.Uint32() % 100, rng.Uint32() % 100, rng.Uint32() % 100}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Process(recs[i%len(recs)], 0)
	}
}

// BenchmarkPlannerGCSL validates the paper's claim that choosing a
// configuration takes only milliseconds (Section 6.3.4).
func BenchmarkPlannerGCSL(b *testing.B) {
	g, err := feedgraph.New([]attr.Set{
		attr.MustParseSet("A"), attr.MustParseSet("B"),
		attr.MustParseSet("C"), attr.MustParseSet("D"),
	})
	if err != nil {
		b.Fatal(err)
	}
	groups := feedgraph.GroupCounts{}
	rng := rand.New(rand.NewSource(3))
	for _, r := range g.Relations() {
		groups[r] = 300 + float64(rng.Intn(2500))
	}
	if err := clampForBench(groups, g); err != nil {
		b.Fatal(err)
	}
	p := cost.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := choose.GCSL(g, groups, 40000, p); err != nil {
			b.Fatal(err)
		}
	}
}

func clampForBench(groups feedgraph.GroupCounts, g *feedgraph.Graph) error {
	rels := g.Relations()
	attr.SortSets(rels)
	for i := len(rels) - 1; i >= 0; i-- {
		for _, r := range rels {
			if r.ProperSubsetOf(rels[i]) && groups[r] > groups[rels[i]] {
				groups[rels[i]] = groups[r]
			}
		}
	}
	return groups.CheckMonotone()
}

// BenchmarkAllocSL and BenchmarkAllocES compare heuristic vs exhaustive
// allocation latency on the deepest paper configuration.
func BenchmarkAllocSL(b *testing.B) { benchAlloc(b, spacealloc.SL) }
func BenchmarkAllocES(b *testing.B) { benchAlloc(b, spacealloc.ES) }

func benchAlloc(b *testing.B, s spacealloc.Scheme) {
	b.Helper()
	cfg, err := feedgraph.ParseConfig("(ABCD(AB BCD(BC BD CD)))", nil)
	if err != nil {
		b.Fatal(err)
	}
	groups := feedgraph.GroupCounts{
		attr.MustParseSet("AB"): 1846, attr.MustParseSet("BC"): 980,
		attr.MustParseSet("BD"): 870, attr.MustParseSet("CD"): 1240,
		attr.MustParseSet("BCD"): 1700, attr.MustParseSet("ABCD"): 2837,
	}
	p := cost.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spacealloc.Allocate(s, cfg, groups, 40000, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollisionPrecise vs BenchmarkCollisionCurve: the binomial sum
// against the fitted regression the optimizer actually evaluates.
func BenchmarkCollisionPrecise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		collision.Precise(2837, 1000)
	}
}

func BenchmarkCollisionCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		collision.Rate(2837, 1000)
	}
}

// BenchmarkEngineThroughput measures end-to-end records/second through a
// planned engine (LFTA + HFTA).
func BenchmarkEngineThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 1000, 60)
	if err != nil {
		b.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 65536, 0)
	queries := []Relation{MustRelation("AB"), MustRelation("BC"), MustRelation("CD")}
	groups, err := EstimateGroups(recs[:10000], queries)
	if err != nil {
		b.Fatal(err)
	}
	sqls := []string{
		"select A, B, count(*) as cnt from R group by A, B",
		"select B, C, count(*) as cnt from R group by B, C",
		"select C, D, count(*) as cnt from R group by C, D",
	}
	eng, err := NewEngine(sqls, groups, Options{M: 20000})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Process(recs[i%len(recs)]); err != nil {
			b.Fatal(err)
		}
	}
}
