// Package magg is a Go implementation of "Multiple Aggregations Over Data
// Streams" (Zhang, Koudas, Ooi, Srivastava — SIGMOD 2005): a two-level
// (LFTA/HFTA) stream-aggregation engine, modeled after Gigascope, that
// evaluates many group-by aggregation queries over one high-speed stream
// by sharing work through phantoms — fine-granularity aggregates
// maintained only at the low level.
//
// # Quick start
//
//	sqls := []string{
//	    "select A, B, count(*) as cnt from R group by A, B, time/60",
//	    "select B, C, count(*) as cnt from R group by B, C, time/60",
//	    "select C, D, count(*) as cnt from R group by C, D, time/60",
//	}
//	queries := []magg.Relation{magg.MustRelation("AB"), magg.MustRelation("BC"), magg.MustRelation("CD")}
//	groups, _ := magg.EstimateGroups(sample, queries) // measure g_R on a sample
//	eng, _ := magg.NewEngine(sqls, groups, magg.Options{M: 40000})
//	_ = eng.Run(magg.NewSliceSource(records))
//	rows := eng.AllResults()
//
// The engine plans which phantoms to instantiate and how to split the M
// units of LFTA memory among the hash tables (algorithm GCSL of the
// paper), executes the stream with evict-on-collision semantics, and
// merges exact per-epoch answers at the HFTA. Optional adaptive mode
// re-plans between epochs as the stream's statistics drift.
//
// Lower-level building blocks — the collision-rate model, the cost model,
// space-allocation schemes and phantom-choosing algorithms — are exposed
// for direct use; the experiment harness reproducing the paper's tables
// and figures lives in cmd/maggbench.
package magg

import (
	"repro/internal/attr"
	"repro/internal/choose"
	"repro/internal/collision"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/epochstore"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/query"
	"repro/internal/spacealloc"
	"repro/internal/stream"
)

// Relation is a set of grouping attributes (A through Z); every group-by
// query and every phantom is identified by one.
type Relation = attr.Set

// ParseRelation parses a relation name such as "ABD".
func ParseRelation(name string) (Relation, error) { return attr.ParseSet(name) }

// MustRelation is ParseRelation that panics on error.
func MustRelation(name string) Relation { return attr.MustParseSet(name) }

// Record is one stream tuple: 4-byte attribute values plus a timestamp.
type Record = stream.Record

// Schema describes the stream relation's attributes.
type Schema = stream.Schema

// NewSchema builds a schema with n attributes named A, B, C, ...
func NewSchema(n int) (Schema, error) { return stream.NewSchema(n) }

// Source yields a stream of records.
type Source = stream.Source

// NewSliceSource replays an in-memory record batch.
func NewSliceSource(recs []Record) *stream.SliceSource { return stream.NewSliceSource(recs) }

// GroupCounts maps relations to their number of groups g_R, the planner's
// main statistical input.
type GroupCounts = feedgraph.GroupCounts

// EstimateGroups measures g_R for every relation of the queries' feeding
// graph from a sample of records.
func EstimateGroups(sample []Record, queries []Relation) (GroupCounts, error) {
	return core.EstimateGroups(sample, queries)
}

// Params are the cost-model parameters: probe cost c1, eviction cost c2,
// the collision-rate estimator, and per-relation flow lengths.
type Params = cost.Params

// DefaultParams is the paper's setting: c1 = 1, c2 = 50, precise-model
// rate curve.
func DefaultParams() Params { return cost.DefaultParams() }

// Engine is the assembled two-level system; see package documentation.
type Engine = core.Engine

// Options configure an Engine.
type Options = core.Options

// AdaptOptions control adaptive re-planning.
type AdaptOptions = core.AdaptOptions

// Planner chooses a configuration; see GCSLPlanner, GSPlanner,
// NoPhantomPlanner.
type Planner = core.Planner

// Planner implementations re-exported from the core engine.
var (
	GCSLPlanner      Planner = core.GCSLPlanner
	NoPhantomPlanner Planner = core.NoPhantomPlanner
)

// GSPlanner returns the greedy-by-increasing-space planner with the given
// φ (the paper's baseline algorithm).
func GSPlanner(phi float64) Planner { return core.GSPlanner(phi) }

// Peak-load repair methods for the end-of-epoch constraint.
const (
	PeakShrink = core.PeakShrink
	PeakShift  = core.PeakShift
)

// NewEngine builds an engine from GSQL query texts; the queries must
// differ only in their grouping attributes.
func NewEngine(sqls []string, groups GroupCounts, opts Options) (*Engine, error) {
	return core.New(sqls, groups, opts)
}

// NewEngineFromSample builds an engine whose group counts are measured
// from a warm-up sample of the stream.
func NewEngineFromSample(sqls []string, sample []Record, opts Options) (*Engine, error) {
	return core.NewFromSample(sqls, sample, opts)
}

// Row is one finalized query answer.
type Row = hfta.Row

// Ops are LFTA operation counts; Ops.ActualCost(c1, c2) is the paper's
// measured cost metric.
type Ops = lfta.Ops

// QuerySpec is a parsed GSQL query.
type QuerySpec = query.Spec

// ParseQuery parses one GSQL aggregation query.
func ParseQuery(sql string) (*QuerySpec, error) { return query.Parse(sql) }

// Config is an LFTA configuration: the instantiated relations arranged as
// a feeding forest. Its String method prints the paper's notation, e.g.
// "ABCD(AB BCD(BC BD CD))".
type Config = feedgraph.Config

// ParseConfig parses the paper's configuration notation. queries names
// the user queries; nil means the leaves.
func ParseConfig(notation string, queries []Relation) (*Config, error) {
	return feedgraph.ParseConfig(notation, queries)
}

// FeedingGraph is the graph of queries and candidate phantoms.
type FeedingGraph = feedgraph.Graph

// NewFeedingGraph builds the feeding graph of a query set.
func NewFeedingGraph(queries []Relation) (*FeedingGraph, error) {
	return feedgraph.New(queries)
}

// PlanResult is a chosen configuration with its allocation and modeled
// per-record cost.
type PlanResult = choose.Result

// Alloc assigns hash-table bucket counts to relations.
type Alloc = cost.Alloc

// Plan runs the paper's GCSL algorithm: it picks phantoms and splits the
// budget of m units among the hash tables.
func Plan(queries []Relation, groups GroupCounts, m int, p Params) (*PlanResult, error) {
	g, err := feedgraph.New(queries)
	if err != nil {
		return nil, err
	}
	return choose.GCSL(g, groups, m, p)
}

// PlanOptimal runs EPES, the exhaustive optimum (exponential; reference
// use only). steps is the ES granularity (0 = the paper's 1% of M).
func PlanOptimal(queries []Relation, groups GroupCounts, m int, p Params, steps int) (*PlanResult, error) {
	g, err := feedgraph.New(queries)
	if err != nil {
		return nil, err
	}
	return choose.EPES(g, groups, m, p, steps)
}

// AllocScheme names a space-allocation heuristic: SL, SR, PL, PR or ES.
type AllocScheme = spacealloc.Scheme

// The paper's space-allocation schemes.
const (
	AllocSL AllocScheme = spacealloc.SL
	AllocSR AllocScheme = spacealloc.SR
	AllocPL AllocScheme = spacealloc.PL
	AllocPR AllocScheme = spacealloc.PR
	AllocES AllocScheme = spacealloc.ES
)

// Allocate splits m units of space among a configuration's hash tables
// with the given scheme.
func Allocate(s AllocScheme, cfg *Config, groups GroupCounts, m int, p Params) (Alloc, error) {
	return spacealloc.Allocate(s, cfg, groups, m, p)
}

// PerRecordCost evaluates the paper's Equation 7 for a configuration and
// allocation: the modeled per-record intra-epoch cost.
func PerRecordCost(cfg *Config, groups GroupCounts, alloc Alloc, p Params) (float64, error) {
	return cost.PerRecord(cfg, groups, alloc, p)
}

// EndOfEpochCost evaluates Equation 8: the end-of-epoch update cost E_u,
// which the peak-load constraint bounds.
func EndOfEpochCost(cfg *Config, groups GroupCounts, alloc Alloc, p Params) (float64, error) {
	return cost.EndOfEpoch(cfg, groups, alloc, p)
}

// CollisionRate is the paper's precise collision-rate model (Equation 13,
// evaluated through the fitted g/b curve): the probability that a probe of
// a hash table with g groups and b buckets evicts the resident entry.
func CollisionRate(g, b float64) float64 { return collision.Rate(g, b) }

// Universe is a set of distinct group tuples records are drawn from.
type Universe = gen.Universe

// FlowTrace is a generated clustered packet trace.
type FlowTrace = gen.FlowTrace

// PaperTrace builds the seeded surrogate for the paper's real dataset:
// 860,000 records over 62 seconds with the published group cardinalities.
func PaperTrace(seed int64) (*Universe, *FlowTrace, error) { return gen.PaperTrace(seed) }

// ReadTraceFile reads a binary trace written by WriteTraceFile or
// cmd/magggen.
func ReadTraceFile(path string) (Schema, []Record, error) { return stream.ReadTraceFile(path) }

// WriteTraceFile writes records in the binary trace format.
func WriteTraceFile(path string, schema Schema, recs []Record) error {
	return stream.WriteTraceFile(path, schema, recs)
}

// OpenTraceSource opens a trace file for incremental (streaming) reads.
func OpenTraceSource(path string) (*stream.TraceSource, error) {
	return stream.OpenTraceSource(path)
}

// NewOrderedSource re-orders a slightly out-of-order stream within a
// bounded slack window, dropping and counting records that arrive too
// late; the engine's epoch clock requires ordered arrivals.
func NewOrderedSource(src Source, slack uint32) *stream.OrderedSource {
	return stream.NewOrderedSource(src, slack)
}

// ResultHandler receives finalized per-epoch rows together with the
// epoch's degradation accounting; installing one in Options.OnResults
// bounds the engine's memory.
type ResultHandler = core.ResultHandler

// WindowSpec is a sliding window in epochs: each window covers Size
// consecutive epochs and a new window starts every Slide epochs. Declare
// one in GSQL with "... time/10 window 4 slide 2"; every closed epoch
// becomes a pane the HFTA composes into overlapping windows. See
// docs/WINDOWS.md.
type WindowSpec = hfta.WindowSpec

// WindowRow is one group's answer for one closed window: the exact
// aggregates composed over the window's panes plus the sketch-aggregate
// estimates (count_distinct, median, percentile) in query order.
type WindowRow = hfta.WindowRow

// WindowLedger is the degradation accounting of one closed window: the
// summed pane ledgers, satisfying Offered == Processed + Dropped + Late.
type WindowLedger = hfta.WindowLedger

// WindowHandler streams closed windows out of the engine (one call per
// query per window); installing one in Options.OnWindow bounds the
// engine's memory on unbounded streams.
type WindowHandler = core.WindowHandler

// TableDiagnostic compares a table's modeled and measured behaviour; see
// Engine.Diagnostics.
type TableDiagnostic = core.TableDiagnostic

// Diagnostics is the operator's view of a running engine: per-table
// modeled-vs-measured statistics plus the degradation ledger.
type Diagnostics = core.Diagnostics

// Degradation is one epoch's overload ledger; the invariant
// Offered == Processed + Dropped + Late holds at every boundary. See
// docs/ROBUSTNESS.md.
type Degradation = core.Degradation

// ShedPolicy decides which records to sacrifice when the engine runs with
// a processing budget (Options.Budget).
type ShedPolicy = core.ShedPolicy

// DropTail is the default shedding policy: admit until the time unit's
// budget is spent, drop the rest.
type DropTail = core.DropTail

// NewUniformShed returns the EWMA-adaptive uniform-sampling shedding
// policy: under sustained overload it converges to dropping the
// unavoidable fraction uniformly across each epoch, keeping per-group
// aggregates an unbiased downscaling of the true ones.
func NewUniformShed(alpha float64, seed uint64) *core.UniformShed {
	return core.NewUniformShed(alpha, seed)
}

// ChaosSource wraps a Source with deterministic, seedable fault injection
// (timestamp regressions, duplicates, bursts, truncation) for robustness
// testing; see ChaosOptions.
type ChaosSource = stream.ChaosSource

// ChaosOptions select the faults a ChaosSource injects.
type ChaosOptions = stream.ChaosOptions

// NewChaosSource wraps src with the configured faults.
func NewChaosSource(src Source, opts ChaosOptions) *ChaosSource {
	return stream.NewChaosSource(src, opts)
}

// SinkFaults configure a FaultySink: every FailEvery-th delivery is lost
// (and accounted), every DelayEvery-th delayed.
type SinkFaults = lfta.SinkFaults

// NewFaultySink returns a fault-injecting wrapper for LFTA→HFTA sinks;
// lost deliveries are counted per relation so degradation stays testable
// as exact arithmetic.
func NewFaultySink(f SinkFaults) *lfta.FaultySink { return lfta.NewFaultySink(f) }

// NewSkipSource discards the first n records of a source — the resume
// path for replaying a stream from a checkpoint's recorded position
// (Engine.RestoreCheckpointFile returns n).
func NewSkipSource(src Source, n uint64) *stream.SkipSource {
	return stream.NewSkipSource(src, n)
}

// ErrBadCheckpoint reports a malformed or workload-mismatched checkpoint
// on Engine.Restore.
var ErrBadCheckpoint = core.ErrBadCheckpoint

// EpochStore is the durable, append-only, crash-safe store for finalized
// epochs. Attach one to an engine via Options.Store: every closed epoch's
// answers are persisted asynchronously (never blocking ingest), and after
// a crash Engine.RestoreCheckpointFile + Engine.ReplayStore resume with
// byte-identical answers for every persisted epoch. See docs/ROBUSTNESS.md.
type EpochStore = epochstore.Store

// EpochStoreOptions configure OpenEpochStore.
type EpochStoreOptions = epochstore.Options

// EpochStoreRecord is one persisted (epoch, query) result set with its
// epoch's degradation ledger.
type EpochStoreRecord = epochstore.Record

// EpochStoreRecovery describes what recovery repaired while opening a
// store (torn tails truncated, segments dropped, manifest rebuilt).
type EpochStoreRecovery = epochstore.Recovery

// OpenEpochStore opens (or creates) a durable epoch store in dir,
// running crash recovery: torn tails are truncated to the last intact
// record and the manifest is rebuilt if damaged. The handle is safe for
// one writer (the engine's persister) plus concurrent readers.
func OpenEpochStore(dir string, opts EpochStoreOptions) (*EpochStore, error) {
	return epochstore.Open(dir, opts)
}

// Durability is the engine's durable-store accounting: how many closed
// epochs reached the store, and which degraded to unpersisted.
type Durability = core.Durability

// EncodePlan serializes a plan (configuration + allocation + modeled
// cost) as JSON for shipping between the planner and the executing node.
func EncodePlan(r *PlanResult) ([]byte, error) { return choose.EncodePlan(r) }

// DecodePlan parses and cross-validates a plan encoded by EncodePlan.
func DecodePlan(data []byte) (*PlanResult, error) { return choose.DecodePlan(data) }
