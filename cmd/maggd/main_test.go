package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/stream"
)

func writeTestTrace(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 300, 40)
	if err != nil {
		t.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 15000, 30)
	path := filepath.Join(t.TempDir(), "t.magt")
	if err := stream.WriteTraceFile(path, schema, recs); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEngine(t *testing.T) {
	trace := writeTestTrace(t)
	sqls := []string{
		"select A, B, count(*) as cnt from R group by A, B, time/10",
		"select B, C, count(*) as cnt from R group by B, C, time/10",
	}
	if err := run(trace, sqls, 20000, 5000, 3, false, true, 0); err != nil {
		t.Fatal(err)
	}
	// Adaptive mode and per-epoch printing both exercise cleanly.
	if err := run(trace, sqls, 20000, 5000, 2, true, false, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	trace := writeTestTrace(t)
	if err := run(filepath.Join(t.TempDir(), "missing.magt"), []string{"select A, count(*) from R group by A"}, 20000, 100, 3, false, true, 0); err == nil {
		t.Error("missing trace accepted")
	}
	if err := run(trace, []string{"not a query"}, 20000, 100, 3, false, true, 0); err == nil {
		t.Error("bad query accepted")
	}
	if err := run(trace, []string{
		"select A, count(*) from R group by A, time/10",
		"select B, count(*) from R group by B, time/60", // mixed epochs
	}, 20000, 100, 3, false, true, 0); err == nil {
		t.Error("incompatible query set accepted")
	}
}

func TestReadQueryFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.gsql")
	content := "# comment\n\nselect A, count(*) as cnt from R group by A\nselect B, count(*) as cnt from R group by B\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	qs, err := readQueryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Errorf("read %d queries; want 2", len(qs))
	}
	if _, err := readQueryFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}
