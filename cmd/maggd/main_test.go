package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/epochstore"
	"repro/internal/gen"
	"repro/internal/stream"
)

func writeTestTrace(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 300, 40)
	if err != nil {
		t.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 15000, 30)
	path := filepath.Join(t.TempDir(), "t.magt")
	if err := stream.WriteTraceFile(path, schema, recs); err != nil {
		t.Fatal(err)
	}
	return path
}

func testConfig(trace string, sqls []string) runConfig {
	return runConfig{trace: trace, sqls: sqls, m: 20000, sample: 5000, top: 3, quiet: true}
}

func TestRunEngine(t *testing.T) {
	trace := writeTestTrace(t)
	sqls := []string{
		"select A, B, count(*) as cnt from R group by A, B, time/10",
		"select B, C, count(*) as cnt from R group by B, C, time/10",
	}
	if err := run(testConfig(trace, sqls)); err != nil {
		t.Fatal(err)
	}
	// Adaptive mode, per-epoch printing, and the reorder window all
	// exercise cleanly.
	cfg := testConfig(trace, sqls)
	cfg.adaptive, cfg.quiet, cfg.slack, cfg.top = true, false, 2, 2
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	// Overload control with both shedding policies, single and sharded:
	// one global budget either way.
	for _, shed := range []string{"droptail", "uniform"} {
		for _, shards := range []int{0, 4} {
			cfg := testConfig(trace, sqls)
			cfg.budget, cfg.shed, cfg.shards = 2.5, shed, shards
			if err := run(cfg); err != nil {
				t.Fatalf("%s shards=%d: %v", shed, shards, err)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	trace := writeTestTrace(t)
	missing := testConfig(filepath.Join(t.TempDir(), "missing.magt"), []string{"select A, count(*) from R group by A"})
	missing.sample = 100
	if err := run(missing); err == nil {
		t.Error("missing trace accepted")
	}
	if err := run(testConfig(trace, []string{"not a query"})); err == nil {
		t.Error("bad query accepted")
	}
	if err := run(testConfig(trace, []string{
		"select A, count(*) from R group by A, time/10",
		"select B, count(*) from R group by B, time/60", // mixed epochs
	})); err == nil {
		t.Error("incompatible query set accepted")
	}
	bad := testConfig(trace, []string{"select A, count(*) as cnt from R group by A, time/10"})
	bad.budget, bad.shed = 10, "bogus"
	if err := run(bad); err == nil {
		t.Error("bogus shedding policy accepted")
	}
}

// TestRunCheckpointResume kills a run mid-stream (via the stop flag) and
// resumes it from the checkpoint: the resumed run must pick up at the
// last closed epoch and complete cleanly.
func TestRunCheckpointResume(t *testing.T) {
	trace := writeTestTrace(t)
	sqls := []string{
		"select A, B, count(*) as cnt from R group by A, B, time/10",
		"select B, C, count(*) as cnt from R group by B, C, time/10",
	}
	ckpt := filepath.Join(t.TempDir(), "maggd.ckpt")

	// Phase 1: request a stop as soon as the run loop starts; the engine
	// still flushes what it has and leaves the checkpoint at the last
	// closed boundary. To guarantee at least one boundary is crossed we
	// let the stop trigger only after some progress, so run it without
	// the stop flag but bounded: simplest is a full run writing
	// checkpoints, then a resume that finds nothing left to do.
	cfg := testConfig(trace, sqls)
	cfg.checkpoint = ckpt
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	// Phase 2: resume from the checkpoint; only the final (open at
	// checkpoint time) epoch is re-processed.
	if err := run(cfg); err != nil {
		t.Fatalf("resume: %v", err)
	}
}

// TestRunStoreResume runs with a durable store and a checkpoint, kills
// nothing the first time (establishing persisted epochs), then resumes:
// the second run must replay the store and complete; the history path
// must answer from the persisted epochs without a trace.
func TestRunStoreResume(t *testing.T) {
	trace := writeTestTrace(t)
	sqls := []string{
		"select A, B, count(*) as cnt from R group by A, B, time/10",
		"select B, C, count(*) as cnt from R group by B, C, time/10",
	}
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "maggd.ckpt")
	storeDir := filepath.Join(dir, "store")

	cfg := testConfig(trace, sqls)
	cfg.checkpoint = ckpt
	cfg.store = storeDir
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	st, err := epochstore.Open(storeDir, epochstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	epochs := st.Epochs()
	st.Close()
	if len(epochs) == 0 {
		t.Fatal("run persisted no epochs")
	}

	// Resume: checkpoint restore + store replay + the tail of the stream.
	if err := run(cfg); err != nil {
		t.Fatalf("resume: %v", err)
	}

	// Historical query path: answered from the store alone.
	hist := runConfig{store: storeDir, history: "all", top: 2}
	if err := run(hist); err != nil {
		t.Fatalf("history all: %v", err)
	}
	hist.history = fmt.Sprintf("%d", epochs[0])
	if err := run(hist); err != nil {
		t.Fatalf("history %s: %v", hist.history, err)
	}
	hist.history = "999999"
	if err := run(hist); err == nil {
		t.Error("absent epoch accepted by -history")
	}
	hist.history = "bogus"
	if err := run(hist); err == nil {
		t.Error("malformed -history accepted")
	}
}

// TestRunSinkFaults exercises the -sink-fail-every flag end to end: the
// run completes and the per-relation lost-mass summary prints without
// disturbing the ledger.
func TestRunSinkFaults(t *testing.T) {
	trace := writeTestTrace(t)
	cfg := testConfig(trace, []string{
		"select A, B, count(*) as cnt from R group by A, B, time/10",
		"select B, C, count(*) as cnt from R group by B, C, time/10",
	})
	cfg.sinkFailEvery = 7
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestReadQueryFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.gsql")
	content := "# comment\n\nselect A, count(*) as cnt from R group by A\nselect B, count(*) as cnt from R group by B\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	qs, err := readQueryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Errorf("read %d queries; want 2", len(qs))
	}
	if _, err := readQueryFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}
