// Command maggd runs the two-level multiple-aggregation engine over a
// trace: it plans an LFTA configuration for the queries, streams the
// records through it, and prints per-epoch query answers.
//
// Usage:
//
//	maggd -trace trace.magt -query "select A, B, count(*) as cnt from R group by A, B, time/10" \
//	      -query "select B, C, count(*) as cnt from R group by B, C, time/10" -m 40000
//
//	maggd -trace trace.magt -queryfile queries.gsql -m 40000 -top 5 -adaptive
//
// A query file holds one GSQL query per line ('#' comments allowed). The
// queries must differ only in their grouping attributes.
//
// Queries with a window clause ("... time/10 window 4 slide 2") and/or
// sketch aggregates (count_distinct, median, percentile) report
// per-window answers composed from panes instead of raw per-epoch rows;
// see docs/WINDOWS.md.
//
// Robustness flags:
//
//   - -budget N enables overload control: the LFTA spends at most N
//     weighted operation units per stream time unit and sheds the rest
//     (-shed droptail|uniform picks the policy); drops are accounted per
//     epoch and printed in the summary.
//   - -shards N partitions the LFTA level into N hash-partitioned shards
//     (Gigascope's one-LFTA-per-interface deployment). -budget stays ONE
//     global budget, split across shards by measured demand and
//     reconciled every epoch; the summary prints the per-shard
//     degradation ledgers, which sum exactly to the global one.
//   - -checkpoint path makes the engine write a checkpoint at every
//     epoch boundary; if the file already exists, maggd resumes from it,
//     skipping the records of all closed epochs and re-processing the
//     open epoch. SIGINT/SIGTERM flush the final (partial) epoch instead
//     of losing it; the checkpoint on disk stays at the last closed
//     boundary, so a later resume re-emits the interrupted epoch whole.
//   - -store dir attaches a durable epoch store: every closed epoch's
//     answers are appended (asynchronously, off the hot path) to a
//     crash-safe segmented log under dir. Opening the store runs
//     automatic recovery — torn tails from a previous crash are truncated
//     to the last intact record. Combined with -checkpoint, a killed run
//     resumes with byte-identical answers for every persisted epoch; if
//     the store is down mid-run the engine degrades gracefully, recording
//     the affected epochs in the durability ledger printed in the summary.
//   - -history N (with -store) prints epoch N's persisted answers from
//     the store instead of streaming; -history all prints every epoch.
//   - -sink-fail-every N drops every Nth LFTA→HFTA delivery (fault
//     injection); the summary prints per-relation lost mass.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/epochstore"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/query"
	"repro/internal/stream"
)

type queryFlags []string

func (q *queryFlags) String() string { return strings.Join(*q, "; ") }
func (q *queryFlags) Set(s string) error {
	*q = append(*q, s)
	return nil
}

type runConfig struct {
	trace         string
	sqls          []string
	m             int
	sample        int
	top           int
	adaptive      bool
	quiet         bool
	slack         uint32
	budget        float64
	shed          string
	shards        int
	checkpoint    string
	store         string       // durable epoch store directory ("" = none)
	history       string       // "N" or "all": print persisted epochs and exit
	sinkFailEvery int          // drop every Nth LFTA→HFTA delivery (0 = off)
	stop          *atomic.Bool // set externally to request a graceful stop
}

func main() {
	var (
		queries    queryFlags
		trace      = flag.String("trace", "", "binary trace file (required)")
		queryFile  = flag.String("queryfile", "", "file with one GSQL query per line")
		m          = flag.Int("m", 40000, "LFTA memory budget in 4-byte units")
		sample     = flag.Int("sample", 50000, "records sampled to estimate group counts")
		top        = flag.Int("top", 10, "rows printed per query per epoch (0 = all)")
		adaptive   = flag.Bool("adaptive", false, "re-plan between epochs as statistics drift")
		quiet      = flag.Bool("quiet", false, "suppress per-epoch rows; print only the summary")
		slack      = flag.Uint("slack", 0, "reorder out-of-order records within this many time units")
		budget     = flag.Float64("budget", 0, "weighted LFTA operation units per stream time unit (0 = unlimited)")
		shed       = flag.String("shed", "droptail", "shedding policy under -budget: droptail or uniform")
		shards     = flag.Int("shards", 0, "hash-partitioned LFTA shards under one global budget (0 = single runtime)")
		checkpoint = flag.String("checkpoint", "", "checkpoint file: written at epoch boundaries, resumed from if present")
		store      = flag.String("store", "", "durable epoch store directory: closed epochs persisted crash-safely, recovered on open")
		history    = flag.String("history", "", "with -store: print persisted epoch N (or 'all') and exit")
		sinkFail   = flag.Int("sink-fail-every", 0, "drop every Nth LFTA→HFTA delivery (fault injection; 0 = off)")
	)
	flag.Var(&queries, "query", "GSQL query (repeatable)")
	flag.Parse()

	if *history != "" {
		if *store == "" {
			fmt.Fprintln(os.Stderr, "maggd: -history requires -store")
			os.Exit(2)
		}
	} else if *trace == "" {
		fmt.Fprintln(os.Stderr, "maggd: -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	if *queryFile != "" {
		qs, err := readQueryFile(*queryFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "maggd: %v\n", err)
			os.Exit(1)
		}
		queries = append(queries, qs...)
	}
	if len(queries) == 0 && *history == "" {
		fmt.Fprintln(os.Stderr, "maggd: no queries (use -query or -queryfile)")
		os.Exit(2)
	}

	// SIGINT/SIGTERM request a graceful stop: the run loop finishes the
	// current record, flushes the final epoch, and exits cleanly with the
	// checkpoint (if any) still pointing at the last closed boundary.
	var stop atomic.Bool
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		stop.Store(true)
		signal.Stop(sigs) // a second signal kills the process immediately
	}()

	cfg := runConfig{
		trace:         *trace,
		sqls:          queries,
		m:             *m,
		sample:        *sample,
		top:           *top,
		adaptive:      *adaptive,
		quiet:         *quiet,
		slack:         uint32(*slack),
		budget:        *budget,
		shed:          *shed,
		shards:        *shards,
		checkpoint:    *checkpoint,
		store:         *store,
		history:       *history,
		sinkFailEvery: *sinkFail,
		stop:          &stop,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "maggd: %v\n", err)
		os.Exit(1)
	}
}

func readQueryFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, sc.Err()
}

func run(cfg runConfig) error {
	// Open the durable epoch store first: recovery (torn-tail truncation,
	// manifest rebuild) happens here, and the history path needs nothing
	// else.
	var store *epochstore.Store
	if cfg.store != "" {
		var err error
		store, err = epochstore.Open(cfg.store, epochstore.Options{})
		if err != nil {
			return fmt.Errorf("opening epoch store: %w", err)
		}
		defer store.Close()
		if rec := store.Recovery(); rec.Dirty() {
			fmt.Printf("store %s recovered: %d bytes of torn tail truncated, %d segments dropped, %d duplicate frames skipped, manifest rebuilt: %v\n",
				cfg.store, rec.TruncatedBytes, rec.DroppedSegments, rec.DuplicateFrames, rec.ManifestRebuilt)
		}
		fmt.Printf("store %s: %d persisted records across %d epochs\n",
			cfg.store, store.Len(), len(store.Epochs()))
	}
	if cfg.history != "" {
		return printHistory(store, cfg.history, cfg.top)
	}

	_, recs, err := stream.ReadTraceFile(cfg.trace)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("trace %s is empty", cfg.trace)
	}
	sampleN := cfg.sample
	if sampleN > len(recs) {
		sampleN = len(recs)
	}

	// The sample drives the initial group-count estimates.
	var rels []attr.Set
	var spec0 *query.Spec
	for _, sql := range cfg.sqls {
		// Parse leniently here just to collect the grouping relations;
		// engine construction re-validates the full set.
		spec, err := query.Parse(sql)
		if err != nil {
			return err
		}
		if spec0 == nil {
			spec0 = spec
		}
		rels = append(rels, spec.GroupBy)
	}
	// Windowed (or sketch-carrying) workloads report per-window answers
	// composed from panes rather than raw per-epoch rows.
	windowed := spec0.Windowed() || len(spec0.Sketches) > 0
	groups, err := core.EstimateGroups(recs[:sampleN], rels)
	if err != nil {
		return err
	}

	opts := core.Options{
		M:              cfg.m,
		Budget:         cfg.budget,
		Shards:         cfg.shards,
		CheckpointPath: cfg.checkpoint,
		Store:          store,
	}
	if cfg.adaptive {
		opts.Adapt = core.AdaptOptions{Enabled: true}
	}
	var sinkFaults *lfta.FaultySink
	if cfg.sinkFailEvery > 0 {
		sinkFaults = lfta.NewFaultySink(lfta.SinkFaults{FailEvery: cfg.sinkFailEvery})
		opts.WrapBatchSink = func(s lfta.BatchSink) lfta.BatchSink {
			return sinkFaults.WrapBatch(s)
		}
	}
	if cfg.budget > 0 {
		switch cfg.shed {
		case "", "droptail":
			opts.Shed = core.DropTail{}
		case "uniform":
			opts.Shed = core.NewUniformShed(0, 1)
		default:
			return fmt.Errorf("unknown shedding policy %q (want droptail or uniform)", cfg.shed)
		}
	}
	// Stream results out as epochs close (daemon behaviour: memory stays
	// bounded regardless of stream length).
	opts.OnResults = func(rel attr.Set, epoch uint32, rows []hfta.Row, deg core.Degradation) {
		if cfg.quiet || windowed {
			return
		}
		fmt.Printf("-- query %v, epoch %d: %d groups\n", rel, epoch, len(rows))
		if deg.Dropped+deg.Late > 0 {
			fmt.Printf("   (degraded: %d of %d records shed, %d late; shedding rate %.2f%%)\n",
				deg.Dropped, deg.Offered, deg.Late, 100*deg.SheddingRate())
		}
		limit := len(rows)
		if cfg.top > 0 && cfg.top < limit {
			limit = cfg.top
		}
		for _, r := range rows[:limit] {
			fmt.Printf("   %v -> %v\n", r.Key, r.Aggs)
		}
		if limit < len(rows) {
			fmt.Printf("   ... %d more\n", len(rows)-limit)
		}
	}
	if windowed {
		// Stream windows as they close (one call per query per window);
		// per-epoch rows are folded into panes instead of printed.
		opts.OnWindow = func(rel attr.Set, led hfta.WindowLedger, rows []hfta.WindowRow) {
			if cfg.quiet {
				return
			}
			fmt.Printf("== window %d [epochs %d..%d], query %v: %d groups\n",
				led.Window, led.Start, led.End, rel, len(rows))
			s := led.Stats
			if s.Dropped+s.Late > 0 {
				fmt.Printf("   (degraded: offered %d = processed %d + dropped %d + late %d)\n",
					s.Offered, s.Processed, s.Dropped, s.Late)
			}
			limit := len(rows)
			if cfg.top > 0 && cfg.top < limit {
				limit = cfg.top
			}
			for _, r := range rows[:limit] {
				if len(r.Sketch) > 0 {
					fmt.Printf("   %v -> %v  ~%s\n", r.Key, r.Aggs, fmtEstimates(r.Sketch))
				} else {
					fmt.Printf("   %v -> %v\n", r.Key, r.Aggs)
				}
			}
			if limit < len(rows) {
				fmt.Printf("   ... %d more\n", len(rows)-limit)
			}
		}
	}
	eng, err := core.New(cfg.sqls, groups, opts)
	if err != nil {
		return err
	}
	fmt.Printf("configuration: %s (modeled cost %.4f/record)\n\n", eng.Plan().Config, eng.Plan().Cost)

	// Resume from an existing checkpoint: skip the records of all closed
	// epochs (post-reordering position) and re-process the open epoch.
	var skip uint64
	if cfg.checkpoint != "" {
		if _, statErr := os.Stat(cfg.checkpoint); statErr == nil {
			skip, err = eng.RestoreCheckpointFile(cfg.checkpoint)
			if err != nil {
				return err
			}
			fmt.Printf("resumed from %s: %d records consumed, %d epochs closed\n",
				cfg.checkpoint, skip, eng.Stats().Epochs)
			if store != nil {
				// Re-hydrate the persisted epochs so historical answers
				// survive the crash byte-identically.
				if err := eng.ReplayStore(); err != nil {
					return err
				}
				fmt.Printf("replayed %d persisted epochs from %s\n", len(store.Epochs()), cfg.store)
			}
			fmt.Println()
		}
	}

	var src stream.Source = stream.NewSliceSource(recs)
	var ordered *stream.OrderedSource
	if cfg.slack > 0 {
		ordered = stream.NewOrderedSource(src, cfg.slack)
		src = ordered
	}
	if skip > 0 {
		src = stream.NewSkipSource(src, skip)
	}

	interrupted := false
	for {
		if cfg.stop != nil && cfg.stop.Load() {
			interrupted = true
			break
		}
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := eng.Process(rec); err != nil {
			return err
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	if err := eng.Finish(); err != nil {
		return err
	}

	st := eng.Stats()
	fmt.Printf("\nrecords:   %d\n", st.Ops.Records)
	fmt.Printf("probes:    %d (c1 operations)\n", st.Ops.Probes)
	fmt.Printf("transfers: %d (c2 operations)\n", st.Ops.Transfers)
	fmt.Printf("actual cost/record: %.4f (c2/c1 = 50)\n", st.Ops.PerRecordCost(1, 50))
	fmt.Printf("epochs: %d, adaptive re-plans: %d\n", st.Epochs, st.Replans)
	if eng.Windowed() {
		fmt.Printf("windows closed: %d\n", st.Windows)
	}
	d := st.Degradation
	if d.Dropped+d.Late > 0 || cfg.budget > 0 {
		fmt.Printf("degradation: offered %d = processed %d + dropped %d + late %d (shedding rate %.2f%%)\n",
			d.Offered, d.Processed, d.Dropped, d.Late, 100*d.SheddingRate())
	}
	if eng.NumShards() > 1 && cfg.budget > 0 {
		for i, sd := range eng.ShardDegradations() {
			fmt.Printf("  shard %d: offered %d = processed %d + dropped %d + late %d\n",
				i, sd.Offered, sd.Processed, sd.Dropped, sd.Late)
		}
	}
	if ordered != nil {
		fmt.Printf("late records dropped by the reorder window: %d\n", ordered.Late())
	}
	if store != nil {
		dur := eng.Durability()
		fmt.Printf("durability: %d epochs persisted to %s", dur.Persisted, cfg.store)
		if len(dur.Unpersisted) > 0 {
			fmt.Printf(", %d UNPERSISTED (epochs %v)", len(dur.Unpersisted), dur.Unpersisted)
		}
		if dur.QueueFull > 0 {
			fmt.Printf(", %d lost to a full persist queue", dur.QueueFull)
		}
		fmt.Println()
		if dur.LastError != "" {
			fmt.Printf("  last persistence error: %s\n", dur.LastError)
		}
	}
	if sinkFaults != nil {
		fmt.Printf("sink faults: %d deliveries lost\n", sinkFaults.Failures())
		for _, rel := range rels {
			count, mass := sinkFaults.Lost(rel)
			if count == 0 {
				continue
			}
			fmt.Printf("  query %v: %d evictions lost, mass %v\n", rel, count, mass)
		}
	}
	if interrupted {
		// Only advertise the checkpoint if one was actually written: a
		// signal arriving before the first epoch boundary leaves nothing
		// on disk to resume from.
		if _, statErr := os.Stat(cfg.checkpoint); cfg.checkpoint != "" && statErr == nil {
			fmt.Printf("interrupted: final epoch flushed; resume from %s\n", cfg.checkpoint)
		} else {
			fmt.Println("interrupted: final epoch flushed")
		}
	}
	return nil
}

// printHistory answers historical-epoch queries straight from the durable
// store: the persisted rows are exactly what the engine emitted when the
// epoch closed (HAVING applied), so no replay is needed.
func printHistory(store *epochstore.Store, sel string, top int) error {
	var epochs []uint32
	if sel == "all" {
		epochs = store.Epochs()
	} else {
		var n uint32
		if _, err := fmt.Sscanf(sel, "%d", &n); err != nil {
			return fmt.Errorf("-history wants an epoch number or 'all', got %q", sel)
		}
		epochs = []uint32{n}
	}
	if len(epochs) == 0 {
		fmt.Println("store holds no epochs")
		return nil
	}
	for _, epoch := range epochs {
		rels := store.Relations(epoch)
		if len(rels) == 0 {
			return fmt.Errorf("epoch %d is not in the store (persisted epochs: %v)", epoch, store.Epochs())
		}
		for _, rel := range rels {
			rec, err := store.Read(epoch, rel)
			if err != nil {
				return err
			}
			fmt.Printf("-- query %v, epoch %d: %d groups", rel, epoch, len(rec.Rows))
			if rec.Dropped+rec.Late > 0 {
				fmt.Printf(" (degraded: %d of %d records shed, %d late)", rec.Dropped, rec.Offered, rec.Late)
			}
			fmt.Println()
			limit := len(rec.Rows)
			if top > 0 && top < limit {
				limit = top
			}
			for _, r := range rec.Rows[:limit] {
				fmt.Printf("   %v -> %v\n", r.Key, r.Aggs)
			}
			if limit < len(rec.Rows) {
				fmt.Printf("   ... %d more\n", len(rec.Rows)-limit)
			}
		}
	}
	return nil
}

// fmtEstimates renders a row's sketch estimates (count_distinct and
// quantile values) compactly.
func fmtEstimates(est []float64) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, v := range est {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%.4g", v)
	}
	sb.WriteByte(']')
	return sb.String()
}
