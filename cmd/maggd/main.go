// Command maggd runs the two-level multiple-aggregation engine over a
// trace: it plans an LFTA configuration for the queries, streams the
// records through it, and prints per-epoch query answers.
//
// Usage:
//
//	maggd -trace trace.magt -query "select A, B, count(*) as cnt from R group by A, B, time/10" \
//	      -query "select B, C, count(*) as cnt from R group by B, C, time/10" -m 40000
//
//	maggd -trace trace.magt -queryfile queries.gsql -m 40000 -top 5 -adaptive
//
// A query file holds one GSQL query per line ('#' comments allowed). The
// queries must differ only in their grouping attributes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/attr"
	"repro/internal/core"
	"repro/internal/hfta"
	"repro/internal/query"
	"repro/internal/stream"
)

type queryFlags []string

func (q *queryFlags) String() string { return strings.Join(*q, "; ") }
func (q *queryFlags) Set(s string) error {
	*q = append(*q, s)
	return nil
}

func main() {
	var (
		queries   queryFlags
		trace     = flag.String("trace", "", "binary trace file (required)")
		queryFile = flag.String("queryfile", "", "file with one GSQL query per line")
		m         = flag.Int("m", 40000, "LFTA memory budget in 4-byte units")
		sample    = flag.Int("sample", 50000, "records sampled to estimate group counts")
		top       = flag.Int("top", 10, "rows printed per query per epoch (0 = all)")
		adaptive  = flag.Bool("adaptive", false, "re-plan between epochs as statistics drift")
		quiet     = flag.Bool("quiet", false, "suppress per-epoch rows; print only the summary")
		slack     = flag.Uint("slack", 0, "reorder out-of-order records within this many time units")
	)
	flag.Var(&queries, "query", "GSQL query (repeatable)")
	flag.Parse()

	if *trace == "" {
		fmt.Fprintln(os.Stderr, "maggd: -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	if *queryFile != "" {
		qs, err := readQueryFile(*queryFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "maggd: %v\n", err)
			os.Exit(1)
		}
		queries = append(queries, qs...)
	}
	if len(queries) == 0 {
		fmt.Fprintln(os.Stderr, "maggd: no queries (use -query or -queryfile)")
		os.Exit(2)
	}

	if err := run(*trace, queries, *m, *sample, *top, *adaptive, *quiet, uint32(*slack)); err != nil {
		fmt.Fprintf(os.Stderr, "maggd: %v\n", err)
		os.Exit(1)
	}
}

func readQueryFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, sc.Err()
}

func run(trace string, sqls []string, m, sampleN, top int, adaptive, quiet bool, slack uint32) error {
	_, recs, err := stream.ReadTraceFile(trace)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("trace %s is empty", trace)
	}
	if sampleN > len(recs) {
		sampleN = len(recs)
	}

	// The sample drives the initial group-count estimates.
	var rels []attr.Set
	for _, sql := range sqls {
		// Parse leniently here just to collect the grouping relations;
		// engine construction re-validates the full set.
		spec, err := parseGroupBy(sql)
		if err != nil {
			return err
		}
		rels = append(rels, spec)
	}
	groups, err := core.EstimateGroups(recs[:sampleN], rels)
	if err != nil {
		return err
	}

	opts := core.Options{M: m}
	if adaptive {
		opts.Adapt = core.AdaptOptions{Enabled: true}
	}
	// Stream results out as epochs close (daemon behaviour: memory stays
	// bounded regardless of stream length).
	opts.OnResults = func(rel attr.Set, epoch uint32, rows []hfta.Row) {
		if quiet {
			return
		}
		fmt.Printf("-- query %v, epoch %d: %d groups\n", rel, epoch, len(rows))
		limit := len(rows)
		if top > 0 && top < limit {
			limit = top
		}
		for _, r := range rows[:limit] {
			fmt.Printf("   %v -> %v\n", r.Key, r.Aggs)
		}
		if limit < len(rows) {
			fmt.Printf("   ... %d more\n", len(rows)-limit)
		}
	}
	eng, err := core.New(sqls, groups, opts)
	if err != nil {
		return err
	}
	fmt.Printf("configuration: %s (modeled cost %.4f/record)\n\n", eng.Plan().Config, eng.Plan().Cost)

	var src stream.Source = stream.NewSliceSource(recs)
	var ordered *stream.OrderedSource
	if slack > 0 {
		ordered = stream.NewOrderedSource(src, slack)
		src = ordered
	}
	if err := eng.Run(src); err != nil {
		return err
	}

	st := eng.Stats()
	fmt.Printf("\nrecords:   %d\n", st.Ops.Records)
	fmt.Printf("probes:    %d (c1 operations)\n", st.Ops.Probes)
	fmt.Printf("transfers: %d (c2 operations)\n", st.Ops.Transfers)
	fmt.Printf("actual cost/record: %.4f (c2/c1 = 50)\n", st.Ops.PerRecordCost(1, 50))
	fmt.Printf("epochs: %d, adaptive re-plans: %d\n", st.Epochs, st.Replans)
	if ordered != nil {
		fmt.Printf("late records dropped by the reorder window: %d\n", ordered.Late())
	}
	return nil
}

// parseGroupBy extracts just the grouping relation from a GSQL query.
func parseGroupBy(sql string) (attr.Set, error) {
	spec, err := query.Parse(sql)
	if err != nil {
		return 0, err
	}
	return spec.GroupBy, nil
}
