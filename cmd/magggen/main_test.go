package main

import (
	"testing"

	"repro/internal/gen"
)

func TestGenerateKinds(t *testing.T) {
	for _, kind := range []string{"uniform", "flows", "zipf"} {
		schema, recs, err := generate(kind, 1, 3, 200, 5000, 10, 8, 1.5, 0)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if schema.NumAttrs != 3 {
			t.Errorf("%s: %d attrs", kind, schema.NumAttrs)
		}
		if len(recs) != 5000 {
			t.Errorf("%s: %d records", kind, len(recs))
		}
		if g := gen.CountGroups(recs, schema.Universe()); g > 200 {
			t.Errorf("%s: %d groups from a 200-group universe", kind, g)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, _, err := generate("bogus", 1, 3, 100, 100, 10, 5, 1.5, 0); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, _, err := generate("uniform", 1, 0, 100, 100, 10, 5, 1.5, 0); err == nil {
		t.Error("zero attrs accepted")
	}
	if _, _, err := generate("zipf", 1, 3, 100, 100, 10, 5, 0.5, 0); err == nil {
		t.Error("invalid zipf exponent accepted")
	}
	if _, _, err := generate("flows", 1, 3, 100, 100, 10, 0.5, 1.5, 0); err == nil {
		t.Error("invalid mean flow length accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	_, a, err := generate("uniform", 7, 2, 50, 1000, 10, 5, 1.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := generate("uniform", 7, 2, 50, 1000, 10, 5, 1.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Attrs[0] != b[i].Attrs[0] || a[i].Time != b[i].Time {
			t.Fatal("same seed produced different traces")
		}
	}
}
