// Command magggen generates workload traces for the engine and the
// experiment harness.
//
// Usage:
//
//	magggen -kind paper -out trace.magt
//	magggen -kind uniform -attrs 4 -groups 2837 -n 1000000 -out u.magt
//	magggen -kind flows -attrs 4 -groups 500 -n 100000 -mean-flow 20 -format text -out f.csv
//
// Kinds: "paper" (the surrogate of the paper's 860k-record tcpdump
// capture), "uniform" (random draws from a fresh group universe), "flows"
// (clustered netflow-like trace), "zipf" (skewed group popularity).
// Formats: "bin" (compact binary, default) and "text" (CSV-like lines).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/gen"
	"repro/internal/stream"
)

func main() {
	var (
		kind     = flag.String("kind", "uniform", "paper | uniform | flows | zipf")
		out      = flag.String("out", "", "output file (required)")
		format   = flag.String("format", "bin", "bin | text")
		seed     = flag.Int64("seed", 42, "generator seed")
		attrs    = flag.Int("attrs", 4, "number of grouping attributes")
		groups   = flag.Int("groups", 2837, "distinct full-width groups")
		n        = flag.Int("n", 1000000, "records to generate")
		duration = flag.Uint("duration", 62, "trace duration in seconds")
		meanFlow = flag.Float64("mean-flow", 20, "mean packets per flow (flows kind)")
		skew     = flag.Float64("skew", 1.5, "zipf exponent (zipf kind)")
		pool     = flag.Uint("pool", 0, "per-attribute value pool (0 = unbounded)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "magggen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	schema, recs, err := generate(*kind, *seed, *attrs, *groups, *n, uint32(*duration), *meanFlow, *skew, uint32(*pool))
	if err != nil {
		fmt.Fprintf(os.Stderr, "magggen: %v\n", err)
		os.Exit(1)
	}

	switch *format {
	case "bin":
		err = stream.WriteTraceFile(*out, schema, recs)
	case "text":
		f, ferr := os.Create(*out)
		if ferr != nil {
			err = ferr
			break
		}
		err = stream.WriteTextTrace(f, schema, recs)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "magggen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records (%d attributes) to %s\n", len(recs), schema.NumAttrs, *out)
}

func generate(kind string, seed int64, attrs, groups, n int, duration uint32, meanFlow, skew float64, pool uint32) (stream.Schema, []stream.Record, error) {
	rng := rand.New(rand.NewSource(seed))
	schema, err := stream.NewSchema(attrs)
	if err != nil {
		return stream.Schema{}, nil, err
	}
	switch kind {
	case "paper":
		_, ft, err := gen.PaperTrace(seed)
		if err != nil {
			return stream.Schema{}, nil, err
		}
		return ft.Schema, ft.Records, nil
	case "uniform":
		u, err := gen.UniformUniverse(rng, schema, groups, pool)
		if err != nil {
			return stream.Schema{}, nil, err
		}
		return schema, gen.Uniform(rng, u, n, duration), nil
	case "flows":
		u, err := gen.UniformUniverse(rng, schema, groups, pool)
		if err != nil {
			return stream.Schema{}, nil, err
		}
		ft, err := gen.Flows(rng, u, gen.FlowConfig{
			NumRecords:  n,
			Duration:    duration,
			MeanFlowLen: meanFlow,
			Concurrency: 64,
		})
		if err != nil {
			return stream.Schema{}, nil, err
		}
		return schema, ft.Records, nil
	case "zipf":
		u, err := gen.UniformUniverse(rng, schema, groups, pool)
		if err != nil {
			return stream.Schema{}, nil, err
		}
		recs, err := gen.Zipf(rng, u, n, duration, skew)
		if err != nil {
			return stream.Schema{}, nil, err
		}
		return schema, recs, nil
	default:
		return stream.Schema{}, nil, fmt.Errorf("unknown kind %q", kind)
	}
}
