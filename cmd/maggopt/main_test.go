package main

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/stream"
)

func writeTestTrace(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 400, 50)
	if err != nil {
		t.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 20000, 30)
	path := filepath.Join(t.TempDir(), "t.magt")
	if err := stream.WriteTraceFile(path, schema, recs); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAlgorithms(t *testing.T) {
	trace := writeTestTrace(t)
	for _, alg := range []string{"gcsl", "gs", "none"} {
		if err := run("AB,BC,CD", trace, 20000, alg, 1.0, 50, 0, "shift", false); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
	}
}

func TestRunWithPeakConstraint(t *testing.T) {
	trace := writeTestTrace(t)
	for _, method := range []string{"shrink", "shift"} {
		if err := run("AB,BC", trace, 20000, "gcsl", 1.0, 50, 1e6, method, false); err != nil {
			t.Errorf("%s: %v", method, err)
		}
	}
	if err := run("AB,BC", trace, 20000, "gcsl", 1.0, 50, 1e6, "bogus", false); err == nil {
		t.Error("bogus peak method accepted")
	}
}

func TestRunErrors(t *testing.T) {
	trace := writeTestTrace(t)
	if err := run("A1", trace, 20000, "gcsl", 1.0, 50, 0, "shift", false); err == nil {
		t.Error("bad query relation accepted")
	}
	if err := run("AB,BC", filepath.Join(t.TempDir(), "missing.magt"), 20000, "gcsl", 1.0, 50, 0, "shift", false); err == nil {
		t.Error("missing trace accepted")
	}
	if err := run("AB,BC", trace, 20000, "bogus", 1.0, 50, 0, "shift", false); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunJSONOutput(t *testing.T) {
	trace := writeTestTrace(t)
	if err := run("AB,BC,CD", trace, 20000, "gcsl", 1.0, 50, 0, "shift", true); err != nil {
		t.Fatal(err)
	}
}
