// Command maggopt plans an LFTA configuration for a query workload: which
// phantoms to instantiate and how to split the memory budget, using the
// paper's algorithms.
//
// Usage:
//
//	maggopt -queries AB,BC,BD,CD -trace trace.magt -m 40000
//	maggopt -queries A,B,C,D -trace u.magt -m 40000 -algorithm gs -phi 1.0
//	maggopt -queries AB,BC -trace t.magt -m 20000 -algorithm epes -peak 500000 -peak-method shift
//
// Group counts g_R are measured from the trace. The chosen configuration
// is printed in the paper's notation together with the per-table
// allocation, the modeled per-record cost (Equation 7) and the
// end-of-epoch cost (Equation 8).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/attr"
	"repro/internal/choose"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/spacealloc"
	"repro/internal/stream"
)

func main() {
	var (
		queriesFlag = flag.String("queries", "", "comma-separated query relations, e.g. AB,BC,BD,CD (required)")
		trace       = flag.String("trace", "", "trace file to measure group counts from (required)")
		m           = flag.Int("m", 40000, "LFTA memory budget in 4-byte units")
		algorithm   = flag.String("algorithm", "gcsl", "gcsl | gs | epes | none")
		phi         = flag.Float64("phi", 1.0, "φ for the gs algorithm")
		c2          = flag.Float64("c2", 50, "eviction/probe cost ratio c2/c1")
		peak        = flag.Float64("peak", 0, "peak-load constraint E_p on the end-of-epoch cost (0 = none)")
		peakMethod  = flag.String("peak-method", "shift", "shrink | shift")
		jsonOut     = flag.Bool("json", false, "emit the plan as JSON instead of the human-readable report")
	)
	flag.Parse()
	if *queriesFlag == "" || *trace == "" {
		fmt.Fprintln(os.Stderr, "maggopt: -queries and -trace are required")
		flag.Usage()
		os.Exit(2)
	}

	if err := run(*queriesFlag, *trace, *m, *algorithm, *phi, *c2, *peak, *peakMethod, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "maggopt: %v\n", err)
		os.Exit(1)
	}
}

func run(queriesFlag, trace string, m int, algorithm string, phi, c2, peak float64, peakMethod string, jsonOut bool) error {
	var queries []attr.Set
	for _, name := range strings.Split(queriesFlag, ",") {
		q, err := attr.ParseSet(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		queries = append(queries, q)
	}
	graph, err := feedgraph.New(queries)
	if err != nil {
		return err
	}

	_, recs, err := stream.ReadTraceFile(trace)
	if err != nil {
		return err
	}
	groups := feedgraph.GroupCounts{}
	for _, r := range graph.Relations() {
		groups[r] = float64(gen.CountGroups(recs, r))
	}

	p := cost.DefaultParams()
	p.C2 = c2 * p.C1

	start := time.Now()
	var res *choose.Result
	switch algorithm {
	case "gcsl":
		res, err = choose.GCSL(graph, groups, m, p)
	case "gs":
		res, err = choose.GS(graph, groups, m, p, phi)
	case "epes":
		res, err = choose.EPES(graph, groups, m, p, 0)
	case "none":
		res, err = choose.NoPhantom(graph, groups, m, p, spacealloc.SL)
	default:
		return fmt.Errorf("unknown algorithm %q", algorithm)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if peak > 0 {
		var fixed cost.Alloc
		switch peakMethod {
		case "shrink":
			fixed, err = spacealloc.Shrink(res.Config, groups, res.Alloc, p, peak)
		case "shift":
			fixed, err = spacealloc.Shift(res.Config, groups, res.Alloc, p, peak)
		default:
			return fmt.Errorf("unknown peak method %q", peakMethod)
		}
		if err != nil {
			return err
		}
		res.Alloc = fixed
		if res.Cost, err = cost.PerRecord(res.Config, groups, fixed, p); err != nil {
			return err
		}
	}

	if jsonOut {
		data, err := choose.EncodePlan(res)
		if err != nil {
			return err
		}
		fmt.Println(string(data))
		return nil
	}

	fmt.Printf("trace:           %s (%d records)\n", trace, len(recs))
	fmt.Printf("queries:         %s\n", queriesFlag)
	fmt.Printf("candidates:      %d phantoms in the feeding graph\n", len(graph.Phantoms))
	fmt.Printf("algorithm:       %s (planned in %v)\n", algorithm, elapsed.Round(time.Microsecond))
	fmt.Printf("configuration:   %s\n", res.Config)
	fmt.Printf("modeled cost:    %.4f per record (c1=%.0f, c2=%.0f)\n", res.Cost, p.C1, p.C2)
	if eu, err := cost.EndOfEpoch(res.Config, groups, res.Alloc, p); err == nil {
		fmt.Printf("end-of-epoch:    %.0f\n", eu)
	}
	fmt.Printf("allocation (M = %d units):\n", m)
	rels := append([]attr.Set(nil), res.Config.Rels...)
	sort.Slice(rels, func(i, j int) bool { return rels[i].String() < rels[j].String() })
	for _, r := range rels {
		b := res.Alloc[r]
		units := b * feedgraph.EntrySize(r)
		kind := "query"
		if !res.Config.IsQuery(r) {
			kind = "phantom"
		}
		fmt.Printf("  %-6s %-8s g=%-6.0f buckets=%-7d space=%d units (%.1f%%)\n",
			r, kind, groups[r], b, units, 100*float64(units)/float64(m))
	}
	return nil
}
