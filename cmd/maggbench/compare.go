package main

// Benchmark-report comparison (-compare): reads two JSON reports written
// by -json (e.g. BENCH_PR1.json and a fresh run) and prints per-benchmark
// deltas. A ns/op regression beyond the threshold on any benchmark makes
// the comparison fail, so `make bench-compare` can gate a PR on the perf
// trajectory.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// defaultRegressionThreshold is the tolerated ns/op growth before a
// benchmark counts as regressed: benchmarks on shared CI hosts jitter by
// a few percent, so the default gate fires only on a >10% slowdown.
// Override with -threshold (CI's short-benchtime smoke run widens it).
const defaultRegressionThreshold = 0.10

// readBenchReport loads one -json report file.
func readBenchReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// compareBenchReports prints a delta table between two report files and
// returns an error naming every benchmark whose ns/op regressed by more
// than threshold. Benchmarks present in only one file are reported but
// never fail the comparison (the suite grows across PRs).
func compareBenchReports(oldPath, newPath string, threshold float64, w io.Writer) error {
	oldR, err := readBenchReport(oldPath)
	if err != nil {
		return err
	}
	newR, err := readBenchReport(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]benchResult, len(oldR.Benchmarks))
	for _, b := range oldR.Benchmarks {
		oldBy[b.Name] = b
	}

	fmt.Fprintf(w, "%-20s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	var regressed []string
	seen := make(map[string]bool, len(newR.Benchmarks))
	for _, nb := range newR.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-20s %14s %14.1f %9s\n", nb.Name, "-", nb.NsPerOp, "new")
			continue
		}
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp
		}
		mark := ""
		if delta > threshold {
			mark = "  << REGRESSION"
			regressed = append(regressed, nb.Name)
		}
		fmt.Fprintf(w, "%-20s %14.1f %14.1f %+8.1f%%%s\n", nb.Name, ob.NsPerOp, nb.NsPerOp, delta*100, mark)
		if ob.AllocsPerOp != nb.AllocsPerOp {
			fmt.Fprintf(w, "%-20s %14d %14d allocs/op\n", "", ob.AllocsPerOp, nb.AllocsPerOp)
		}
	}
	for _, ob := range oldR.Benchmarks {
		if !seen[ob.Name] {
			fmt.Fprintf(w, "%-20s %14.1f %14s %9s\n", ob.Name, ob.NsPerOp, "-", "removed")
		}
	}
	// Shard scaling is informational only — the regression gate above
	// covers ns/op on named benchmarks and has never gated speedup, so a
	// starved runner (fewer procs than shards; the router and workers
	// time-slice one core) cannot fail a PR on a number that measures
	// the scheduler. Reports written before the starved field derive it
	// from gomaxprocs (or, older still, num_cpu).
	procs := newR.GoMaxProcs
	if procs == 0 {
		procs = newR.NumCPU
	}
	for _, p := range newR.ShardScaling {
		if p.Starved || (procs > 0 && procs < p.Shards) {
			fmt.Fprintf(w, "shard-scaling n=%-3d %14.0f rec/s par  speedup n/a (starved)\n",
				p.Shards, p.ParRecordsPerSec)
			continue
		}
		fmt.Fprintf(w, "shard-scaling n=%-3d %14.0f rec/s par  speedup %.2fx\n",
			p.Shards, p.ParRecordsPerSec, p.ParallelSpeedup)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("ns/op regressed more than %.0f%% on: %v", threshold*100, regressed)
	}
	return nil
}
