package main

// Machine-readable performance benchmarks (-json): a fixed suite of
// engine and building-block benchmarks whose results are written as a
// JSON summary, so the perf trajectory across PRs is diffable
// (BENCH_PR1.json onward). The suite mirrors the go-test benchmarks in
// bench_test.go / bench_micro_test.go but runs standalone via
// testing.Benchmark, no `go test` invocation required.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/choose"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/feedgraph"
	"repro/internal/gen"
	"repro/internal/hashtab"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/query"
	"repro/internal/selvec"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// benchResult is one benchmark's summary. RecordsPerSec is the
// throughput in stream records per second (0 when the benchmark has no
// per-record interpretation).
type benchResult struct {
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	RecordsPerSec float64 `json:"records_per_sec,omitempty"`
	Iterations    int     `json:"iterations"`
}

// shardScalePoint is one shard-count measurement of the sharded ingest
// path: the same trace routed through n shards sequentially and through
// the pipelined parallel path, with the parallel speedup (sequential
// wall time / parallel wall time; >1 means the pipeline wins). Starved
// marks points measured with fewer schedulable procs than shards — the
// pipeline's router plus workers are then time-slicing one core, so a
// speedup number would measure the scheduler, not the pipeline, and
// ParallelSpeedup is left 0 rather than reported as a (meaningless)
// slowdown. The point of the series is the trajectory across shard
// counts on multicore hosts.
type shardScalePoint struct {
	Shards            int     `json:"shards"`
	SequentialNsPerOp float64 `json:"sequential_ns_per_op"`
	ParallelNsPerOp   float64 `json:"parallel_ns_per_op"`
	SeqRecordsPerSec  float64 `json:"sequential_records_per_sec"`
	ParRecordsPerSec  float64 `json:"parallel_records_per_sec"`
	ParallelSpeedup   float64 `json:"parallel_speedup"`
	Starved           bool    `json:"starved,omitempty"`
}

// benchReport is the file-level JSON document. GoMaxProcs records the
// scheduler's actual parallelism budget (NumCPU alone overstates it in
// cgroup-limited CI containers), so readers of the shard-scaling series
// can tell a pipeline regression from a starved runner.
type benchReport struct {
	Generated    string            `json:"generated"`
	GoVersion    string            `json:"go_version"`
	GOOS         string            `json:"goos"`
	GOARCH       string            `json:"goarch"`
	NumCPU       int               `json:"num_cpu"`
	GoMaxProcs   int               `json:"gomaxprocs"`
	Benchmarks   []benchResult     `json:"benchmarks"`
	ShardScaling []shardScalePoint `json:"shard_scaling,omitempty"`
}

// namedBench couples a benchmark body with its report entry. recordsPerOp
// converts ns/op into records/sec (0 = not a record-throughput bench).
type namedBench struct {
	name         string
	recordsPerOp float64
	fn           func(b *testing.B)
}

// benchSuite builds the standard suite. Kept as a function (not a global)
// so each -json run constructs fresh fixtures.
func benchSuite() []namedBench {
	return []namedBench{
		{name: "engine-throughput", recordsPerOp: 1, fn: benchEngineThroughput},
		{name: "runtime-record", recordsPerOp: 1, fn: benchRuntimeRecord},
		{name: "lfta-probe", recordsPerOp: 1, fn: benchLFTAProbe},
		{name: "lfta-probe-warm", recordsPerOp: 1, fn: benchLFTAProbeWarm},
		{name: "lfta-probe-dup-heavy", recordsPerOp: 1, fn: benchLFTAProbeDupHeavy},
		{name: "lfta-probe-large-scalar", recordsPerOp: 1, fn: benchLFTAProbeLarge(false)},
		{name: "lfta-probe-large-batch", recordsPerOp: 1, fn: benchLFTAProbeLarge(true)},
		{name: "filter-kernel", recordsPerOp: filterKernelLanes, fn: benchFilterKernel},
		{name: "engine-filtered-p1", recordsPerOp: 1, fn: benchEngineFiltered(10)},
		{name: "engine-filtered-p10", recordsPerOp: 1, fn: benchEngineFiltered(100)},
		{name: "engine-filtered-p50", recordsPerOp: 1, fn: benchEngineFiltered(500)},
		{name: "engine-filtered-p100", recordsPerOp: 1, fn: benchEngineFiltered(1000)},
		{name: "engine-filtered-interp-p1", recordsPerOp: 1, fn: benchEngineFilteredInterp(10)},
		{name: "hfta-merge", recordsPerOp: 0, fn: benchHFTAMerge},
		{name: "hfta-merge-run", recordsPerOp: mergeRunEntries, fn: benchHFTAMergeRun},
		{name: "columnar-route", recordsPerOp: 1, fn: benchColumnarRoute},
		{name: "window-compose", recordsPerOp: 0, fn: benchWindowCompose},
		{name: "sketch-merge", recordsPerOp: 0, fn: benchSketchMerge},
		{name: "sharded-sequential", recordsPerOp: shardedBenchRecords, fn: shardedBench(false)},
		{name: "sharded-parallel", recordsPerOp: shardedBenchRecords, fn: shardedBench(true)},
	}
}

// runBenchSuite executes the suite and writes the JSON report to path
// ("-" for stdout), echoing human-readable lines to log.
func runBenchSuite(path string, log io.Writer) error {
	report := benchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, nb := range benchSuite() {
		res := testing.Benchmark(nb.fn)
		r := benchResult{
			Name:        nb.name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
		}
		if nb.recordsPerOp > 0 && r.NsPerOp > 0 {
			r.RecordsPerSec = nb.recordsPerOp * 1e9 / r.NsPerOp
		}
		report.Benchmarks = append(report.Benchmarks, r)
		fmt.Fprintf(log, "%-20s %12.1f ns/op %8d B/op %6d allocs/op",
			nb.name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		if r.RecordsPerSec > 0 {
			fmt.Fprintf(log, " %14.0f records/s", r.RecordsPerSec)
		}
		fmt.Fprintln(log)
	}
	report.ShardScaling = runShardScaling(log)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// benchEngineThroughput is the end-to-end hot path: one record through a
// planned two-level engine (LFTA probes, cascades, batched HFTA merge).
func benchEngineThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 1000, 60)
	if err != nil {
		b.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 65536, 0)
	queries := []attr.Set{attr.MustParseSet("AB"), attr.MustParseSet("BC"), attr.MustParseSet("CD")}
	groups, err := core.EstimateGroups(recs[:10000], queries)
	if err != nil {
		b.Fatal(err)
	}
	sqls := []string{
		"select A, B, count(*) as cnt from R group by A, B",
		"select B, C, count(*) as cnt from R group by B, C",
		"select C, D, count(*) as cnt from R group by C, D",
	}
	eng, err := core.New(sqls, groups, core.Options{M: 20000})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Process(recs[i%len(recs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// Filtered-ingest benchmark parameters: attribute values uniform in
// [0, filteredValuePool), so a `where A < thr` clause passes thr/10
// percent of the stream in expectation — the selectivity sweep's knob.
const (
	filteredBenchRecords = 65536
	filteredValuePool    = 1000
)

// newFilteredEngine builds the engine for the selectivity sweep: the
// engine-throughput plan with a shared `where A < thr` clause, compiled
// to columnar kernels by default or forced through the per-record
// interpreted DNF walk (the measurement baseline).
func newFilteredEngine(thr int, interp bool) (*core.Engine, []stream.Record, error) {
	rng := rand.New(rand.NewSource(4))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 1000, filteredValuePool)
	if err != nil {
		return nil, nil, err
	}
	recs := gen.Uniform(rng, u, filteredBenchRecords, 0)
	queries := []attr.Set{attr.MustParseSet("AB"), attr.MustParseSet("BC"), attr.MustParseSet("CD")}
	groups, err := core.EstimateGroups(recs[:10000], queries)
	if err != nil {
		return nil, nil, err
	}
	sqls := []string{
		fmt.Sprintf("select A, B, count(*) as cnt from R where A < %d group by A, B", thr),
		fmt.Sprintf("select B, C, count(*) as cnt from R where A < %d group by B, C", thr),
		fmt.Sprintf("select C, D, count(*) as cnt from R where A < %d group by C, D", thr),
	}
	eng, err := core.New(sqls, groups, core.Options{M: 20000, InterpretedFilter: interp})
	if err != nil {
		return nil, nil, err
	}
	return eng, recs, nil
}

// benchEngineFiltered measures the vectorized filtered-ingest path — a
// compiled WHERE over whole column batches, survivors threaded through
// by selection — at the pass rate thr/filteredValuePool. One op is one
// stream record offered (filtered or not).
func benchEngineFiltered(thr int) func(b *testing.B) {
	return func(b *testing.B) {
		eng, recs, err := newFilteredEngine(thr, false)
		if err != nil {
			b.Fatal(err)
		}
		// Prebuilt column batches, cycled; each op re-runs the filter
		// kernels over the batch (the selection vector is recomputed in
		// place, so no iteration sees a cached verdict).
		var batches []*stream.ColumnBatch
		for pos := 0; pos < len(recs); pos += stream.ColumnBatchLen {
			n := stream.ColumnBatchLen
			if rest := len(recs) - pos; n > rest {
				n = rest
			}
			cb := &stream.ColumnBatch{}
			cb.Reset(len(recs[pos].Attrs))
			for i := 0; i < n; i++ {
				cb.Append(recs[pos+i].Attrs, recs[pos+i].Time)
			}
			batches = append(batches, cb)
		}
		b.ReportAllocs()
		b.ResetTimer()
		bi := 0
		for done := 0; done < b.N; {
			cb := batches[bi%len(batches)]
			if err := eng.ProcessColumnBatch(cb); err != nil {
				b.Fatal(err)
			}
			done += cb.Len()
			bi++
		}
	}
}

// benchEngineFilteredInterp is the scalar-interpreted control leg of the
// selectivity sweep: the same filtered workload with the WHERE walked
// per record (Options.InterpretedFilter). The engine-filtered-p1 /
// engine-filtered-interp-p1 ratio is the vectorization win the PR 10
// acceptance bar is set on.
func benchEngineFilteredInterp(thr int) func(b *testing.B) {
	return func(b *testing.B) {
		eng, recs, err := newFilteredEngine(thr, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eng.Process(recs[i%len(recs)]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// filterKernelLanes is the batch width of the filter microbenchmark —
// big enough to amortize per-call dispatch, the regime EvalColumns runs
// in under the engine.
const filterKernelLanes = 4096

// benchFilterKernel isolates the compiled predicate kernels: one
// two-conjunction DNF (range ∧ range ∨ equality) evaluated over
// filterKernelLanes lanes into a selection bitmap, with the adaptive
// reranker live. Whether the SWAR or vector kernels run follows the
// process-wide tag-scan selection (MAGG_SIMD).
func benchFilterKernel(b *testing.B) {
	f := query.Filter{DNF: [][]query.Predicate{
		{{Attr: 0, Op: query.Lt, Val: 10}, {Attr: 1, Op: query.Ge, Val: 500}},
		{{Attr: 2, Op: query.Eq, Val: 77}},
	}}
	cf := f.Compile()
	rng := rand.New(rand.NewSource(6))
	cols := make([][]uint32, 4)
	for a := range cols {
		cols[a] = make([]uint32, filterKernelLanes)
		for i := range cols[a] {
			cols[a][i] = rng.Uint32() % filteredValuePool
		}
	}
	sel := selvec.Grow(nil, filterKernelLanes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cf.EvalColumns(cols, filterKernelLanes, sel)
	}
}

// benchRuntimeRecord drives one record through a three-level LFTA
// configuration with no HFTA attached (probe + cascade cost only).
func benchRuntimeRecord(b *testing.B) {
	queries := []attr.Set{
		attr.MustParseSet("AB"), attr.MustParseSet("BC"),
		attr.MustParseSet("BD"), attr.MustParseSet("CD"),
	}
	cfg, err := feedgraph.ParseConfig("ABCD(AB BCD(BC BD CD))", queries)
	if err != nil {
		b.Fatal(err)
	}
	alloc := cost.Alloc{}
	for _, r := range cfg.Rels {
		alloc[r] = 1024
	}
	rt, err := lfta.New(cfg, alloc, lfta.CountStar, 3, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	recs := make([]stream.Record, 1024)
	for i := range recs {
		recs[i] = stream.Record{Attrs: []uint32{rng.Uint32() % 100, rng.Uint32() % 100, rng.Uint32() % 100, rng.Uint32() % 100}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Process(recs[i%len(recs)], 0)
	}
}

// benchLFTAProbe isolates a single hash-table probe (the paper's c1).
func benchLFTAProbe(b *testing.B) {
	tab := hashtab.MustNew(attr.MustParseSet("ABCD"), 4096, []hashtab.AggOp{hashtab.Sum}, 1)
	rng := rand.New(rand.NewSource(1))
	keys := make([][]uint32, 1024)
	for i := range keys {
		keys[i] = []uint32{rng.Uint32() % 500, rng.Uint32() % 500, rng.Uint32() % 500, rng.Uint32() % 500}
	}
	deltas := []int64{1}
	var victim hashtab.Entry
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.ProbeInto(keys[i%len(keys)], deltas, &victim)
	}
}

// benchLFTAProbeWarm is the warm-hit fast path in isolation: every
// resident key is installed up front, the table fits in L1/L2, and every
// probe is a hit resolved by one tag scan plus one key compare — the
// floor the group layout sets for the paper's c1 when the working set is
// cache-resident.
func benchLFTAProbeWarm(b *testing.B) {
	tab := hashtab.MustNew(attr.MustParseSet("AB"), 1024, []hashtab.AggOp{hashtab.Sum}, 3)
	rng := rand.New(rand.NewSource(8))
	keys := make([][]uint32, 512)
	deltas := []int64{1}
	var victim hashtab.Entry
	for i := range keys {
		keys[i] = []uint32{uint32(i), rng.Uint32() % 900}
		tab.ProbeInto(keys[i], deltas, &victim)
	}
	b.ReportAllocs()
	b.ResetTimer()
	// Power-of-two key cycle indexed by mask: a runtime modulo would
	// cost a visible fraction of the ~9 ns probe under measurement.
	for i := 0; i < b.N; i++ {
		tab.ProbeInto(keys[i&511], deltas, &victim)
	}
}

// benchLFTAProbeDupHeavy measures the batch commit pass on runs
// dominated by duplicate keys: 512-probe runs drawn from 32 distinct
// groups, so nearly every probe re-reads a group the same run already
// touched — the fresh-tag-read path the setup/commit split must get
// right and the regime real traces with heavy flows live in.
func benchLFTAProbeDupHeavy(b *testing.B) {
	const (
		dupRun      = 512
		dupUniverse = 32
	)
	tab := hashtab.MustNew(attr.MustParseSet("AB"), 4096, []hashtab.AggOp{hashtab.Sum}, 5)
	rng := rand.New(rand.NewSource(21))
	keys := make([]uint32, 2*dupRun)
	for i := 0; i < dupRun; i++ {
		g := rng.Intn(dupUniverse)
		keys[2*i] = uint32(g)
		keys[2*i+1] = uint32(g * 13)
	}
	deltas := make([]int64, dupRun)
	for i := range deltas {
		deltas[i] = 1
	}
	var out hashtab.VictimRun
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := dupRun
		if b.N-done < n {
			n = b.N - done
		}
		tab.ProbeBatchInto(keys[:2*n], deltas[:n], &out)
		done += n
	}
}

// Large-table probe benchmark parameters: a table whose bucket storage
// (~40 MB at 2^21 buckets × (2 key words + 1 aggregate + update count +
// tag)) dwarfs any L2/L3, probed with a stream of ~4M distinct groups
// drawn from a universe four times the bucket count. In steady state
// most probes evict a resident victim, so the benchmark is genuinely
// miss-heavy: every probe is a near-certain cache miss AND a hard-to-
// predict branch, the regime where the paper's c1 cost is pure memory
// latency. (A shorter cycled stream goes hit-dominated after the first
// lap — resident groups, predictable branches — and the out-of-order
// core hides the latency on its own.) The scalar and batch variants run
// the same key sequence; their ratio is the measured memory-level-
// parallelism win of ProbeBatchInto's prefetched setup/commit split.
const (
	largeProbeBuckets  = 1 << 21
	largeProbeKeys     = 1 << 22 // pregenerated probe stream, cycled
	largeProbeUniverse = 1 << 23
	largeProbeRun      = 512 // run length fed to ProbeBatchInto per call
)

// newLargeProbeFixture builds the table and the flat columnar key stream
// shared by both variants.
func newLargeProbeFixture() (*hashtab.Table, []uint32) {
	tab := hashtab.MustNew(attr.MustParseSet("AB"), largeProbeBuckets, []hashtab.AggOp{hashtab.Sum}, 11)
	rng := rand.New(rand.NewSource(17))
	keys := make([]uint32, 2*largeProbeKeys)
	for i := 0; i < largeProbeKeys; i++ {
		g := rng.Intn(largeProbeUniverse)
		keys[2*i] = uint32(g)
		keys[2*i+1] = uint32(g >> 11)
	}
	return tab, keys
}

// benchLFTAProbeLarge measures ns per probe on the miss-heavy large
// table, scalar (ProbeInto loop) or batched (ProbeBatchInto runs).
func benchLFTAProbeLarge(batched bool) func(b *testing.B) {
	return func(b *testing.B) {
		tab, keys := newLargeProbeFixture()
		deltas := make([]int64, largeProbeRun)
		for i := range deltas {
			deltas[i] = 1
		}
		nruns := largeProbeKeys / largeProbeRun
		var victim hashtab.Entry
		var out hashtab.VictimRun
		b.ReportAllocs()
		b.ResetTimer()
		if batched {
			for done := 0; done < b.N; {
				r := (done / largeProbeRun) % nruns
				n := largeProbeRun
				if b.N-done < n {
					n = b.N - done
				}
				o := r * largeProbeRun * 2
				tab.ProbeBatchInto(keys[o:o+2*n], deltas[:n], &out)
				done += n
			}
		} else {
			for i := 0; i < b.N; i++ {
				o := (i % largeProbeKeys) * 2
				tab.ProbeInto(keys[o:o+2:o+2], deltas[:1], &victim)
			}
		}
	}
}

// benchHFTAMerge isolates one eviction merged into the HFTA state.
func benchHFTAMerge(b *testing.B) {
	agg, err := hfta.New([]attr.Set{attr.MustParseSet("AB")}, lfta.CountStar)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	evs := make([]lfta.Eviction, 1024)
	for i := range evs {
		evs[i] = lfta.Eviction{
			Rel:   attr.MustParseSet("AB"),
			Key:   []uint32{rng.Uint32() % 500, rng.Uint32() % 500},
			Aggs:  []int64{int64(rng.Intn(100))},
			Epoch: uint32(i % 4),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Consume(evs[i%len(evs)])
	}
}

// mergeRunEntries is the entry count of one sealed eviction run in the
// merge-run benchmark — lfta.DefaultEvictionBatch, the size SetRunSink
// seals at by default.
const mergeRunEntries = 256

// benchHFTAMergeRun measures one sealed columnar run through the
// batched HFTA merge path (MergeRun: pre-hash, partition by lock shard,
// one lock hold per touched shard) — the transfer shape the run sink
// delivers. Compare against hfta-merge × mergeRunEntries for the
// per-entry-vs-batched ratio.
func benchHFTAMergeRun(b *testing.B) {
	rel := attr.MustParseSet("AB")
	agg, err := hfta.New([]attr.Set{rel}, lfta.CountStar)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint32, 2*mergeRunEntries)
	deltas := make([]int64, mergeRunEntries)
	for i := 0; i < mergeRunEntries; i++ {
		keys[2*i] = rng.Uint32() % 500
		keys[2*i+1] = rng.Uint32() % 500
		deltas[i] = int64(rng.Intn(100) + 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.MergeRun(rel, uint32(i%4), keys, deltas)
	}
}

// benchColumnarRoute isolates the router's per-record work on the
// columnar ingest path: fill a ColumnBatch from the source
// (ReadColumns), hash the key columns (HashColumns — same mixing as the
// record-major routing hash), and reduce each hash to a shard index.
// This is pass 1 of the pipelined router with no rings or workers
// attached, so the number is pure routing cost per record.
func benchColumnarRoute(b *testing.B) {
	// Same constant as lfta's routing seed; any fixed seed measures the
	// same kernel.
	const routeSeed = 0x5bd1e995bc9e3779
	const routeShards = 8
	rng := rand.New(rand.NewSource(4))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 2000, 0)
	if err != nil {
		b.Fatal(err)
	}
	recs := gen.Uniform(rng, u, shardedBenchRecords, 50)
	src := stream.NewSliceSource(recs)
	var cb stream.ColumnBatch
	hv := make([]uint64, stream.ColumnBatchLen)
	six := make([]int32, stream.ColumnBatchLen)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		limit := stream.ColumnBatchLen
		if b.N-done < limit {
			limit = b.N - done
		}
		n := stream.ReadColumns(src, &cb, limit)
		if n == 0 {
			src.Reset()
			continue
		}
		hashtab.HashColumns(routeSeed, cb.Cols, hv[:n])
		for i := 0; i < n; i++ {
			six[i] = int32(hashtab.Reduce(hv[i], routeShards))
		}
		done += n
	}
	_ = six
}

// benchWindowCompose measures one pane through the sliding-window
// composer: ClosePane over a 256-group pane (exact rows plus serialized
// sketch partials) followed by CloseThrough, so steady state alternates
// pane retention and full window composition at size 4 / slide 2.
func benchWindowCompose(b *testing.B) {
	const (
		paneGroups    = 256
		paneTemplates = 8
	)
	queries := []attr.Set{attr.MustParseSet("AB"), attr.MustParseSet("BC")}
	saggs := []sketch.Agg{
		{Kind: sketch.Distinct, Input: 3},
		{Kind: sketch.Quantile, Input: 2, Q: 0.9},
	}
	comp, err := hfta.NewComposer(hfta.WindowSpec{Size: 4, Slide: 2}, queries, lfta.CountStar, saggs, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	// Pane templates are safe to re-feed: the composer stores row slots
	// and sketch blobs without mutating them, and composition folds into
	// fresh accumulators.
	rng := rand.New(rand.NewSource(9))
	templates := make([][]hfta.PaneInput, paneTemplates)
	for t := range templates {
		for _, q := range queries {
			in := hfta.PaneInput{Rel: q, Sketches: make(map[string][]byte, paneGroups)}
			for g := 0; g < paneGroups; g++ {
				key := []uint32{uint32(g), uint32(g % 60)}
				in.Rows = append(in.Rows, hfta.Row{Rel: q, Key: key, Aggs: []int64{int64(rng.Intn(500) + 1)}})
				p, err := sketch.NewPartial(saggs, 0, 0)
				if err != nil {
					b.Fatal(err)
				}
				for r := 0; r < 8; r++ {
					p.Observe([]uint32{key[0], key[1], rng.Uint32() % 1000, rng.Uint32() % 5000})
				}
				in.Sketches[hfta.PackKey(key)] = p.AppendBinary(nil)
			}
			templates[t] = append(templates[t], in)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		epoch := uint32(i)
		comp.ClosePane(epoch, hfta.PaneStats{Offered: paneGroups, Processed: paneGroups}, templates[i%paneTemplates])
		// Recycling delivered results mirrors the engine's OnWindow
		// handler path and keeps the composer's freelists stocked, so
		// the measurement is the recycled steady state.
		for _, res := range comp.CloseThrough(int64(epoch)) {
			comp.Recycle(res)
		}
	}
}

// benchSketchMerge measures the composer's blob-merge path in isolation:
// decode two serialized sketch partials (HLL + two t-digests), merge,
// and re-encode — the per-duplicate-group cost of pane composition and
// the LFTA→HFTA sketch transfer.
func benchSketchMerge(b *testing.B) {
	const blobCount = 64
	saggs := []sketch.Agg{
		{Kind: sketch.Distinct, Input: 0},
		{Kind: sketch.Quantile, Input: 1, Q: 0.5},
		{Kind: sketch.Quantile, Input: 1, Q: 0.99},
	}
	rng := rand.New(rand.NewSource(12))
	blobs := make([][]byte, blobCount)
	for i := range blobs {
		p, err := sketch.NewPartial(saggs, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		for r := 0; r < 512; r++ {
			p.Observe([]uint32{rng.Uint32() % 20000, rng.Uint32() % 100000})
		}
		blobs[i] = p.AppendBinary(nil)
	}
	var out []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa, _, err := sketch.DecodePartial(saggs, 0, 0, blobs[i%blobCount])
		if err != nil {
			b.Fatal(err)
		}
		pb, _, err := sketch.DecodePartial(saggs, 0, 0, blobs[(i+1)%blobCount])
		if err != nil {
			b.Fatal(err)
		}
		if err := pa.Merge(pb); err != nil {
			b.Fatal(err)
		}
		out = pa.AppendBinary(out[:0])
	}
	_ = out
}

// shardedBenchRecords is the trace length of the sharded benchmarks; one
// benchmark op runs the whole trace.
const shardedBenchRecords = 200000

// shardedFixture is a reusable planned n-shard deployment over a fixed
// trace. Construction happens once; each benchmark op resets the pooled
// state and replays the trace, so the measurement is the steady state of
// the ingest path rather than per-iteration fixture construction.
type shardedFixture struct {
	src *stream.SliceSource
	agg *hfta.Aggregator
	s   *lfta.Sharded
}

func newShardedFixture(shards int) (*shardedFixture, error) {
	rng := rand.New(rand.NewSource(4))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 2000, 0)
	if err != nil {
		return nil, err
	}
	recs := gen.Uniform(rng, u, shardedBenchRecords, 50)
	queries := []attr.Set{attr.MustParseSet("AB"), attr.MustParseSet("BC"), attr.MustParseSet("CD")}
	groups, err := core.EstimateGroups(recs[:20000], queries)
	if err != nil {
		return nil, err
	}
	g, err := feedgraph.New(queries)
	if err != nil {
		return nil, err
	}
	plan, err := choose.GCSL(g, groups, 20000, cost.DefaultParams())
	if err != nil {
		return nil, err
	}
	agg, err := hfta.New(queries, lfta.CountStar)
	if err != nil {
		return nil, err
	}
	s, err := lfta.NewSharded(plan.Config, plan.Alloc, lfta.CountStar, 5, nil, shards)
	if err != nil {
		return nil, err
	}
	// Columnar transfer: shards seal eviction runs and the HFTA folds
	// each with one lock hold per touched shard (the engine's default
	// hookup since the columnar pipeline landed).
	s.SetRunSink(agg.MergeRun, 0)
	return &shardedFixture{src: stream.NewSliceSource(recs), agg: agg, s: s}, nil
}

// run replays the trace once from clean (but pre-sized) state.
func (f *shardedFixture) run(parallel bool) error {
	f.agg.Reset()
	f.s.Reset()
	f.src.Reset()
	if parallel {
		_, err := f.s.RunParallel(f.src, 10)
		return err
	}
	_, err := f.s.Run(f.src, 10)
	return err
}

// shardedBench runs a planned 4-shard LFTA deployment over a fixed trace
// with the batched eviction path, sequentially or in parallel.
func shardedBench(parallel bool) func(b *testing.B) {
	return func(b *testing.B) {
		f, err := newShardedFixture(4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := f.run(parallel); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// runShardScaling measures the sharded ingest path at 1, 2, 4 and 8
// shards — sequential routing vs the pipelined parallel path — and
// reports per-shard-count throughput plus the parallel speedup.
func runShardScaling(log io.Writer) []shardScalePoint {
	var out []shardScalePoint
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		measure := func(parallel bool) testing.BenchmarkResult {
			return testing.Benchmark(func(b *testing.B) {
				f, err := newShardedFixture(n)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := f.run(parallel); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		seq := measure(false)
		par := measure(true)
		p := shardScalePoint{
			Shards:            n,
			SequentialNsPerOp: float64(seq.T.Nanoseconds()) / float64(seq.N),
			ParallelNsPerOp:   float64(par.T.Nanoseconds()) / float64(par.N),
			Starved:           runtime.GOMAXPROCS(0) < n,
		}
		if p.SequentialNsPerOp > 0 {
			p.SeqRecordsPerSec = shardedBenchRecords * 1e9 / p.SequentialNsPerOp
		}
		if p.ParallelNsPerOp > 0 {
			p.ParRecordsPerSec = shardedBenchRecords * 1e9 / p.ParallelNsPerOp
			if !p.Starved {
				p.ParallelSpeedup = p.SequentialNsPerOp / p.ParallelNsPerOp
			}
		}
		out = append(out, p)
		if p.Starved {
			fmt.Fprintf(log, "shard-scaling n=%d   %12.0f rec/s seq %12.0f rec/s par  speedup n/a (starved: %d procs < %d shards)\n",
				n, p.SeqRecordsPerSec, p.ParRecordsPerSec, runtime.GOMAXPROCS(0), n)
		} else {
			fmt.Fprintf(log, "shard-scaling n=%d   %12.0f rec/s seq %12.0f rec/s par  speedup %.2fx\n",
				n, p.SeqRecordsPerSec, p.ParRecordsPerSec, p.ParallelSpeedup)
		}
	}
	return out
}
