package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestRunExperiments(t *testing.T) {
	ctx := experiments.NewContext(true)
	var buf bytes.Buffer
	if err := runExperiments(&buf, []string{"fig6", "table1"}, ctx); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig6", "table1", "completed in"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q", want)
		}
	}
}

func TestRunExperimentsUnknownID(t *testing.T) {
	ctx := experiments.NewContext(true)
	var buf bytes.Buffer
	err := runExperiments(&buf, []string{"fig6", "nope"}, ctx)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// The known experiment before the failure still ran.
	if !strings.Contains(buf.String(), "fig6") {
		t.Error("fig6 did not run before the error")
	}
}

func TestRunExperimentsHandlesWhitespace(t *testing.T) {
	ctx := experiments.NewContext(true)
	var buf bytes.Buffer
	if err := runExperiments(&buf, []string{" fig6 ", "\ttable1"}, ctx); err != nil {
		t.Fatal(err)
	}
}
