// Command maggbench regenerates the paper's tables and figures.
//
// Usage:
//
//	maggbench [-run id[,id...]] [-quick] [-seed n] [-list] [-json path]
//	maggbench -compare OLD.json NEW.json
//
// Without -run it executes every experiment in paper order. Experiment
// ids are fig5..fig15 and table1..table3. -quick shrinks datasets and
// sweeps for a fast smoke run; the default sizes match the paper's setup
// (860k-record trace, 1M-record synthetic dataset).
//
// -json runs the engine performance suite instead of the paper
// experiments and writes a machine-readable summary (records/sec,
// allocs/op, ns/op per benchmark, shard-scaling sweep) to the given path
// ("-" for stdout) — the BENCH_PR1.json format tracking the perf
// trajectory across PRs.
//
// -compare diffs two such reports, printing per-benchmark deltas, and
// exits non-zero if any benchmark's ns/op regressed by more than 10%.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "comma-separated experiment ids (default: all)")
		quick = flag.Bool("quick", false, "reduced dataset sizes and sweeps")
		seed  = flag.Int64("seed", 42, "seed for the synthetic datasets")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		jsonP = flag.String("json", "", "run the perf benchmark suite and write a JSON summary to this path (\"-\" for stdout)")
		comp  = flag.Bool("compare", false, "compare two -json reports (args: OLD.json NEW.json); exit non-zero on >10% ns/op regression")
	)
	flag.Parse()

	if *comp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "maggbench: -compare needs exactly two report paths (old new)")
			os.Exit(2)
		}
		if err := compareBenchReports(flag.Arg(0), flag.Arg(1), os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "maggbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonP != "" {
		if err := runBenchSuite(*jsonP, os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "maggbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	ctx := experiments.NewContext(*quick)
	ctx.Seed = *seed

	if err := runExperiments(os.Stdout, ids, ctx); err != nil {
		fmt.Fprintf(os.Stderr, "maggbench: %v\n", err)
		os.Exit(1)
	}
}

// runExperiments executes the listed experiments, printing each table;
// it returns the first error after attempting every experiment.
func runExperiments(w io.Writer, ids []string, ctx *experiments.Context) error {
	var firstErr error
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tab, err := experiments.Run(id, ctx)
		if err == nil {
			err = tab.Fprint(w)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %v", id, err)
			}
			continue
		}
		fmt.Fprintf(w, "(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return firstErr
}
