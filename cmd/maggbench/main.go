// Command maggbench regenerates the paper's tables and figures.
//
// Usage:
//
//	maggbench [-run id[,id...]] [-quick] [-seed n] [-list] [-json path]
//	          [-benchtime d] [-cpuprofile path] [-memprofile path]
//	maggbench -compare [-threshold f] OLD.json NEW.json
//
// Without -run it executes every experiment in paper order. Experiment
// ids are fig5..fig15 and table1..table3. -quick shrinks datasets and
// sweeps for a fast smoke run; the default sizes match the paper's setup
// (860k-record trace, 1M-record synthetic dataset).
//
// -json runs the engine performance suite instead of the paper
// experiments and writes a machine-readable summary (records/sec,
// allocs/op, ns/op per benchmark, shard-scaling sweep) to the given path
// ("-" for stdout) — the BENCH_PR1.json format tracking the perf
// trajectory across PRs. -benchtime controls how long each benchmark
// runs (Go benchtime syntax: "1s", "100ms", "50x"); the default is the
// testing package's 1s. CI uses a short benchtime with a widened
// -threshold to smoke-test the trajectory cheaply.
//
// -cpuprofile / -memprofile write pprof profiles covering whatever the
// invocation ran (the benchmark suite or the paper experiments), so
// kernel work can be profiled without editing the harness; see
// docs/PERF.md for the workflow.
//
// -compare diffs two such reports, printing per-benchmark deltas, and
// exits non-zero if any benchmark's ns/op regressed by more than
// -threshold (default 10%).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

func main() {
	testing.Init() // registers test.benchtime for the -benchtime flag
	var (
		run       = flag.String("run", "", "comma-separated experiment ids (default: all)")
		quick     = flag.Bool("quick", false, "reduced dataset sizes and sweeps")
		seed      = flag.Int64("seed", 42, "seed for the synthetic datasets")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		jsonP     = flag.String("json", "", "run the perf benchmark suite and write a JSON summary to this path (\"-\" for stdout)")
		comp      = flag.Bool("compare", false, "compare two -json reports (args: OLD.json NEW.json); exit non-zero on ns/op regression beyond -threshold")
		threshold = flag.Float64("threshold", defaultRegressionThreshold, "tolerated fractional ns/op growth before -compare fails")
		benchtime = flag.String("benchtime", "", "per-benchmark run time for -json (Go benchtime syntax, e.g. \"100ms\" or \"50x\"; default 1s)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()

	if *comp {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "maggbench: -compare needs exactly two report paths (old new)")
			os.Exit(2)
		}
		if err := compareBenchReports(flag.Arg(0), flag.Arg(1), *threshold, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "maggbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *benchtime != "" {
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "maggbench: -benchtime %q: %v\n", *benchtime, err)
			os.Exit(2)
		}
	}
	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "maggbench: %v\n", err)
		os.Exit(1)
	}
	fail := func(err error) {
		stopProfiles()
		fmt.Fprintf(os.Stderr, "maggbench: %v\n", err)
		os.Exit(1)
	}

	if *jsonP != "" {
		if err := runBenchSuite(*jsonP, os.Stderr); err != nil {
			fail(err)
		}
		stopProfiles()
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		stopProfiles()
		return
	}

	ids := experiments.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}
	ctx := experiments.NewContext(*quick)
	ctx.Seed = *seed

	if err := runExperiments(os.Stdout, ids, ctx); err != nil {
		fail(err)
	}
	stopProfiles()
}

// startProfiles starts CPU profiling and arranges for a heap profile at
// stop time, per the -cpuprofile/-memprofile flags. The returned stop
// function is safe to call once on every exit path.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %v", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			cpuFile = nil
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "maggbench: heap profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "maggbench: heap profile: %v\n", err)
			}
			memPath = ""
		}
	}, nil
}

// runExperiments executes the listed experiments, printing each table;
// it returns the first error after attempting every experiment.
func runExperiments(w io.Writer, ids []string, ctx *experiments.Context) error {
	var firstErr error
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		tab, err := experiments.Run(id, ctx)
		if err == nil {
			err = tab.Fprint(w)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %v", id, err)
			}
			continue
		}
		fmt.Fprintf(w, "(%s completed in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	return firstErr
}
