package magg

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/attr"
	"repro/internal/gen"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/query"
	"repro/internal/stream"
)

// Additional micro-benchmarks: HFTA merge, trace encoding/decoding,
// query parsing, and sequential-vs-parallel sharding.

func BenchmarkHFTAMerge(b *testing.B) {
	agg, err := hfta.New([]attr.Set{attr.MustParseSet("AB")}, lfta.CountStar)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	evs := make([]lfta.Eviction, 1024)
	for i := range evs {
		evs[i] = lfta.Eviction{
			Rel:   attr.MustParseSet("AB"),
			Key:   []uint32{rng.Uint32() % 500, rng.Uint32() % 500},
			Aggs:  []int64{int64(rng.Intn(100))},
			Epoch: uint32(i % 4),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Consume(evs[i%len(evs)])
	}
}

func BenchmarkTraceEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 500, 0)
	if err != nil {
		b.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 10000, 60)
	b.SetBytes(int64(len(recs) * 20))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := stream.WriteTrace(&buf, schema, recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 500, 0)
	if err != nil {
		b.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 10000, 60)
	var buf bytes.Buffer
	if err := stream.WriteTrace(&buf, schema, recs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := stream.ReadTrace(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryParse(b *testing.B) {
	const sql = "select A, B, count(*) as cnt, avg(D) as len from R where C >= 1024 group by A, B, time/300 having cnt > 100"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedSequential / BenchmarkShardedParallel measure the
// multi-LFTA deployment over a fixed batch; compare ns/op to see the
// parallel speedup on multicore hosts.
func BenchmarkShardedSequential(b *testing.B) { benchSharded(b, false) }
func BenchmarkShardedParallel(b *testing.B)   { benchSharded(b, true) }

func benchSharded(b *testing.B, parallel bool) {
	b.Helper()
	rng := rand.New(rand.NewSource(4))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 2000, 0)
	if err != nil {
		b.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 200000, 50)
	queries := []Relation{MustRelation("AB"), MustRelation("BC"), MustRelation("CD")}
	groups, err := EstimateGroups(recs[:20000], queries)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := Plan(queries, groups, 20000, DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(recs)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, err := NewAggregator(queries, CountStar)
		if err != nil {
			b.Fatal(err)
		}
		s, err := NewShardedLFTA(plan.Config, plan.Alloc, CountStar, 5, nil, 4)
		if err != nil {
			b.Fatal(err)
		}
		s.SetBatchSink(agg.ConsumeBatch, 0)
		if parallel {
			_, err = s.RunParallel(NewSliceSource(recs), 10)
		} else {
			_, err = s.Run(NewSliceSource(recs), 10)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
