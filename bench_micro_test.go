package magg

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/attr"
	"repro/internal/gen"
	"repro/internal/hfta"
	"repro/internal/lfta"
	"repro/internal/query"
	"repro/internal/stream"
)

// Additional micro-benchmarks: HFTA merge, trace encoding/decoding,
// query parsing, and sequential-vs-parallel sharding.

func BenchmarkHFTAMerge(b *testing.B) {
	agg, err := hfta.New([]attr.Set{attr.MustParseSet("AB")}, lfta.CountStar)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	evs := make([]lfta.Eviction, 1024)
	for i := range evs {
		evs[i] = lfta.Eviction{
			Rel:   attr.MustParseSet("AB"),
			Key:   []uint32{rng.Uint32() % 500, rng.Uint32() % 500},
			Aggs:  []int64{int64(rng.Intn(100))},
			Epoch: uint32(i % 4),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Consume(evs[i%len(evs)])
	}
}

func BenchmarkTraceEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 500, 0)
	if err != nil {
		b.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 10000, 60)
	b.SetBytes(int64(len(recs) * 20))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := stream.WriteTrace(&buf, schema, recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 500, 0)
	if err != nil {
		b.Fatal(err)
	}
	recs := gen.Uniform(rng, u, 10000, 60)
	var buf bytes.Buffer
	if err := stream.WriteTrace(&buf, schema, recs); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := stream.ReadTrace(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryParse(b *testing.B) {
	const sql = "select A, B, count(*) as cnt, avg(D) as len from R where C >= 1024 group by A, B, time/300 having cnt > 100"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedSequential / BenchmarkShardedParallel measure the
// multi-LFTA deployment over a fixed batch; compare ns/op to see the
// parallel speedup on multicore hosts.
func BenchmarkShardedSequential(b *testing.B) { benchSharded(b, false) }
func BenchmarkShardedParallel(b *testing.B)   { benchSharded(b, true) }

// shardedFixture builds the reusable deployment the sharded benchmarks
// and the steady-state allocation assertion drive: a planned 4-shard
// LFTA over a fixed uniform trace, feeding a batched HFTA. Reusing one
// fixture across iterations (Reset between runs) measures the steady
// state instead of per-iteration construction cost.
type shardedFixture struct {
	recs []stream.Record
	src  *stream.SliceSource
	agg  *hfta.Aggregator
	s    *lfta.Sharded
}

func newShardedFixture(tb testing.TB, records int) *shardedFixture {
	tb.Helper()
	rng := rand.New(rand.NewSource(4))
	schema := stream.MustSchema(4)
	u, err := gen.UniformUniverse(rng, schema, 2000, 0)
	if err != nil {
		tb.Fatal(err)
	}
	recs := gen.Uniform(rng, u, records, 50)
	queries := []Relation{MustRelation("AB"), MustRelation("BC"), MustRelation("CD")}
	groups, err := EstimateGroups(recs[:20000], queries)
	if err != nil {
		tb.Fatal(err)
	}
	plan, err := Plan(queries, groups, 20000, DefaultParams())
	if err != nil {
		tb.Fatal(err)
	}
	agg, err := NewAggregator(queries, CountStar)
	if err != nil {
		tb.Fatal(err)
	}
	s, err := NewShardedLFTA(plan.Config, plan.Alloc, CountStar, 5, nil, 4)
	if err != nil {
		tb.Fatal(err)
	}
	s.SetBatchSink(agg.ConsumeBatch, 0)
	return &shardedFixture{recs: recs, src: NewSliceSource(recs), agg: agg, s: s}
}

// run performs one full pass over the trace from clean state.
func (f *shardedFixture) run(tb testing.TB, parallel bool) {
	f.agg.Reset()
	f.s.Reset()
	f.src.Reset()
	var err error
	if parallel {
		_, err = f.s.RunParallel(f.src, 10)
	} else {
		_, err = f.s.Run(f.src, 10)
	}
	if err != nil {
		tb.Fatal(err)
	}
}

func benchSharded(b *testing.B, parallel bool) {
	b.Helper()
	f := newShardedFixture(b, 200000)
	b.SetBytes(int64(len(f.recs)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.run(b, parallel)
	}
}

// TestShardedParallelSpeedup asserts the pipelined parallel path beats
// sequential routing by ≥1.5× at 4 shards. The measurement always runs;
// the assertion is skipped on hosts without enough CPUs to give the four
// shard workers and the router their own cores (a single-CPU runner
// time-slices them, and the pipeline can only tie sequential at best).
func TestShardedParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement needs the full trace")
	}
	f := newShardedFixture(t, 200000)
	measure := func(parallel bool) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			f.run(t, parallel)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	f.run(t, true) // warm pools before timing
	seq := measure(false)
	par := measure(true)
	speedup := float64(seq) / float64(par)
	t.Logf("4 shards over 200k records: sequential %v, parallel %v, speedup %.2fx (GOMAXPROCS=%d)",
		seq, par, speedup, runtime.GOMAXPROCS(0))
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("parallel speedup assertion needs ≥4 CPUs, have %d", runtime.GOMAXPROCS(0))
	}
	if speedup < 1.5 {
		t.Errorf("parallel speedup %.2fx below the 1.5x floor", speedup)
	}
}

// TestShardedSteadyStateAllocs is the allocation regression gate for the
// sharded ingest path: after one warm-up pass (which sizes every pooled
// structure — hash tables, eviction arenas, SPSC run buffers, HFTA group
// maps), a full 200k-record pass must run effectively allocation-free.
// The bound is a hard budget per *pass*, not per record: 200 allocations
// over 200k records is 0.001 allocs/record, three orders of magnitude
// below the pre-pooling figure (~3800 per pass), and loose enough to
// absorb goroutine spawns and map-rehash jitter.
func TestShardedSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement needs the full trace")
	}
	f := newShardedFixture(t, 200000)
	for _, tc := range []struct {
		name     string
		parallel bool
		budget   float64
	}{
		// Sequential routing spawns nothing; parallel spawns one worker
		// goroutine per shard per pass plus scheduler bookkeeping.
		{"sequential", false, 100},
		{"parallel", true, 200},
	} {
		f.run(t, tc.parallel) // warm up pools to steady state
		avg := testing.AllocsPerRun(3, func() {
			f.run(t, tc.parallel)
		})
		if avg > tc.budget {
			t.Errorf("%s: %v allocs per 200k-record pass, budget %v — pooled buffers are churning again",
				tc.name, avg, tc.budget)
		}
	}
}
