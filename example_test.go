package magg_test

import (
	"fmt"

	magg "repro"
)

func ExampleParseConfig() {
	// The paper's configuration notation: ABCD feeds AB and the phantom
	// BCD, which feeds the remaining queries.
	queries := []magg.Relation{
		magg.MustRelation("AB"), magg.MustRelation("BC"),
		magg.MustRelation("BD"), magg.MustRelation("CD"),
	}
	cfg, _ := magg.ParseConfig("ABCD(AB BCD(BC BD CD))", queries)
	fmt.Println(cfg)
	fmt.Println("phantoms:", cfg.Phantoms())
	// Output:
	// ABCD(AB BCD(BC BD CD))
	// phantoms: [ABCD BCD]
}

func ExampleCollisionRate() {
	// The probability that a probe of a 1000-bucket table holding 1000
	// groups evicts the resident entry — about 1/e.
	fmt.Printf("%.2f\n", magg.CollisionRate(1000, 1000))
	// Output: 0.37
}

func ExampleParseQuery() {
	spec, _ := magg.ParseQuery("select A, count(*) as cnt from R group by A, time/300 having cnt > 100")
	fmt.Println("relation:", spec.GroupBy)
	fmt.Println("epoch:", spec.EpochLen)
	fmt.Println("passes having with 150:", spec.MatchHaving([]int64{150}))
	// Output:
	// relation: A
	// epoch: 300
	// passes having with 150: true
}

func ExamplePerRecordCost() {
	// Equation 7 for the no-phantom configuration of three queries with
	// 1000 groups each, 500 buckets each: 3 probes plus 3 leaf-eviction
	// terms of x·c2.
	queries := []magg.Relation{
		magg.MustRelation("A"), magg.MustRelation("B"), magg.MustRelation("C"),
	}
	cfg, _ := magg.ParseConfig("A B C", queries)
	groups := magg.GroupCounts{}
	alloc := magg.Alloc{}
	for _, q := range queries {
		groups[q] = 1000
		alloc[q] = 500
	}
	cost, _ := magg.PerRecordCost(cfg, groups, alloc, magg.DefaultParams())
	fmt.Printf("%.0f weighted operations per record\n", cost)
	// Output: 88 weighted operations per record
}
